package synth

// The aarch64 code generator. It emits the same structural taxonomy as
// codegen.go — every funcSpec field has an A64 rendering — in the
// native idiom of the ISA: stp/ldp frame records instead of push/pop,
// adrp+add table-base formation instead of RIP-relative lea, BTI
// landing pads instead of endbr64, and CFI against the aarch64 CIE
// (code align 4, CFA = sp+0 at entry, return address in x30). The
// x86-64 generator is untouched: the two backends never share an rng
// stream, so existing x64 corpora stay byte-identical.

import (
	"fmt"
	"math/rand"

	"fetch/internal/a64"
	"fetch/internal/arch"
	"fetch/internal/ehframe"
	"fetch/internal/x64"
)

// a64SaveReg maps the spec's callee-saved pool (named in x64 registers
// by buildSpecs, which is ISA-agnostic about everything else) onto the
// AAPCS64 callee-saved file.
var a64SaveReg = map[x64.Reg]arch.Reg{
	x64.RBX: a64.X19, x64.R12: a64.X20, x64.R13: a64.X21, x64.R14: a64.X22,
}

// a64ScratchRegs are the caller-saved temporaries filler code draws
// from. They sit outside the argument registers so a read is legal
// only after a tracked write — the property the §IV-E validation uses
// against mid-function pointers.
var a64ScratchRegs = []arch.Reg{a64.X9, a64.X10, a64.X11, a64.X12, a64.X13}

// a64CalleeSaved lists the callee-saved registers the generator
// allocates (the image of a64SaveReg).
var a64CalleeSaved = []arch.Reg{a64.X19, a64.X20, a64.X21, a64.X22}

// cgenA64 wraps the A64 assembler with CFI and stack-height tracking,
// mirroring cgen. Heights carry no +8 bias: the aarch64 CFA equals SP
// at entry (nothing is pushed by BL).
type cgenA64 struct {
	a      a64.Asm
	cfi    []cfiAt
	height int64 // bytes allocated below the entry SP
	fpCFA  bool  // CFA has been re-based on x29: stop emitting offsets
	rng    *rand.Rand
	// written tracks registers initialized so far (for generating
	// calling-convention-respecting filler).
	written arch.RegSet
}

func (g *cgenA64) note(in ehframe.CFI) {
	g.cfi = append(g.cfi, cfiAt{off: g.a.Len(), in: in})
}

func (g *cgenA64) noteOffset() {
	if !g.fpCFA {
		g.note(ehframe.CFI{Op: ehframe.CFADefCFAOffset, Offset: g.height})
	}
}

// pushFrame emits the frame-record save stp x29, x30, [sp, #-16]!.
func (g *cgenA64) pushFrame() {
	g.a.StpPre(a64.X29, a64.X30, -16)
	g.height += 16
	g.noteOffset()
	if !g.fpCFA {
		g.note(ehframe.CFI{Op: ehframe.CFAOffset, Reg: ehframe.DwA64FP, Offset: g.height})
		g.note(ehframe.CFI{Op: ehframe.CFAOffset, Reg: ehframe.DwA64RA, Offset: g.height - 8})
	}
}

// popFrame restores the frame record and, when the CFA was x29-based,
// re-bases it on SP.
func (g *cgenA64) popFrame() {
	g.a.LdpPost(a64.X29, a64.X30, 16)
	g.height -= 16
	if g.fpCFA {
		g.fpCFA = false
		g.note(ehframe.CFI{Op: ehframe.CFADefCFA, Reg: ehframe.DwA64SP, Offset: g.height})
		return
	}
	g.noteOffset()
}

// push saves one callee-saved register in its own 16-byte slot (the
// str pre-index shape keeps SP 16-aligned).
func (g *cgenA64) push(r arch.Reg) {
	g.a.StrPre(r, -16)
	g.height += 16
	g.noteOffset()
	if !g.fpCFA {
		g.note(ehframe.CFI{Op: ehframe.CFAOffset, Reg: uint64(r), Offset: g.height})
	}
}

func (g *cgenA64) pop(r arch.Reg) {
	g.a.LdrPost(r, 16)
	g.height -= 16
	g.noteOffset()
}

func (g *cgenA64) subSP(n int32) {
	if n == 0 {
		return
	}
	g.a.SubSP(n)
	g.height += int64(n)
	g.noteOffset()
}

func (g *cgenA64) addSP(n int32) {
	if n == 0 {
		return
	}
	g.a.AddSP(n)
	g.height -= int64(n)
	g.noteOffset()
}

// readable returns a register that is legal to read here: an argument
// register or anything already written.
func (g *cgenA64) readable() arch.Reg {
	cands := []arch.Reg{a64.X0, a64.X1}
	for _, r := range a64ScratchRegs {
		if g.written.Has(r) {
			cands = append(cands, r)
		}
	}
	for _, r := range a64CalleeSaved {
		if g.written.Has(r) {
			cands = append(cands, r)
		}
	}
	return cands[g.rng.Intn(len(cands))]
}

// filler emits one semantically harmless, convention-respecting body
// instruction.
func (g *cgenA64) filler() {
	dst := a64ScratchRegs[g.rng.Intn(len(a64ScratchRegs))]
	switch g.rng.Intn(7) {
	case 0:
		g.a.MovRegReg(dst, g.readable())
	case 1:
		g.a.MovRegImm(dst, int64(g.rng.Intn(1<<16)))
	case 2:
		g.a.MovRegImm(dst, 0)
	case 3:
		g.a.MovRegReg(dst, g.readable())
		g.a.AddRegImm(dst, int32(g.rng.Intn(256))+1)
	case 4:
		g.a.AddRegRegImm(dst, g.readable(), int32(g.rng.Intn(64)))
	case 5:
		if g.height >= 16 {
			// A pure store writes no register: dst must not be
			// marked initialized.
			g.a.StrRegMem(g.readable(), a64.SP, int32(g.rng.Intn(2))*8)
			return
		}
		g.a.MovRegReg(dst, g.readable())
	case 6:
		g.a.MovRegReg(dst, g.readable())
		g.a.LslRegImm(dst, uint8(g.rng.Intn(4)+1))
	}
	g.written = g.written.Add(dst)
}

// emitCall sets up the first argument and calls the symbol.
func (g *cgenA64) emitCall(c callRef) {
	if c.isErr {
		g.a.MovRegImm(a64.X0, int64(c.errArg))
	} else {
		switch g.rng.Intn(3) {
		case 0:
			g.a.MovRegImm(a64.X0, 0)
		case 1:
			g.a.MovRegImm(a64.X0, int64(g.rng.Intn(128)))
		case 2: // leave x0 as-is (pass through)
		}
	}
	g.a.BlSym(c.sym)
	for _, r := range a64ScratchRegs {
		g.written = g.written.Add(r)
	}
	g.written = g.written.Add(a64.X0)
}

// emitFuncA64 generates the chunk(s) for one function on aarch64.
func emitFuncA64(spec *funcSpec, rng *rand.Rand) (*chunk, *chunk, error) {
	switch spec.class {
	case clsExit:
		return emitExitA64(spec)
	case clsError:
		return emitErrorA64(spec)
	case clsAsm, clsTailAsm, clsIndirAsm, clsUnreach:
		return emitAsmA64(spec, rng)
	case clsClangTerm:
		return emitClangTermA64(spec)
	case clsThunkMid:
		return emitThunkA64(spec)
	case clsICF:
		return emitICFA64(spec)
	case clsXrefChain:
		return emitChainLinkA64(spec)
	}
	return emitCompiledA64(spec, rng)
}

// emitChainLinkA64 produces one xref-chain function. The next link's
// address is materialized with a true ADR past the validation walk
// bound — its immediate IS the resolved address, so the §IV-E constant
// harvest lands on the symbol only once the link's body is committed.
func emitChainLinkA64(spec *funcSpec) (*chunk, *chunk, error) {
	var a a64.Asm
	a.MovRegReg(a64.X9, a64.X0)
	for k := 0; k < chainSpacerInsts; k++ {
		a.AddRegImm(a64.X9, 1)
	}
	if spec.chainNext != "" {
		a.AdrNearSym(a64.X10, spec.chainNext)
	}
	a.Ret()
	code, fixups, err := a.Finish()
	if err != nil {
		return nil, nil, err
	}
	return &chunk{
		name: spec.name, code: code, fixups: fixups,
		spec: spec, hasFDE: false, hasSym: spec.hasSym, align: 16,
	}, nil, nil
}

// emitCompiledA64 produces a realistic compiled C/C++ function. The
// body mirrors emitCompiled feature for feature; the frame record
// (stp x29, x30) is always saved — the bodies contain calls — and the
// useEnter flag degrades to the standard framing (A64 has no enter).
func emitCompiledA64(spec *funcSpec, rng *rand.Rand) (*chunk, *chunk, error) {
	g := &cgenA64{rng: rng}
	exports := map[string]int{}

	if spec.startPad > 0 {
		g.a.Pad(spec.startPad)
	}
	if spec.class == clsCFIErr {
		// One garbage word before the true entry; the hand-written FDE
		// claims the function starts here (the Figure-6b shape, one
		// instruction early instead of one byte). The word is
		// mov x0, x19: decoding from the FDE start reads a callee-saved
		// register before initialization, failing the §IV-E check.
		g.a.AppendRaw(0xE0, 0x03, 0x13, 0xAA)
	}
	trueEntry := g.a.Len()

	if rng.Intn(2) == 0 && !spec.noEndbr {
		g.a.Bti()
	}

	// Prologue: frame record, frame-pointer establishment for the
	// x29-CFA class, per-register saves, then the local frame.
	g.pushFrame()
	if spec.frame == frameRBP {
		g.a.MovFPSP()
		g.note(ehframe.CFI{Op: ehframe.CFADefCFARegister, Reg: ehframe.DwA64FP})
		g.fpCFA = true
	}
	for _, r := range spec.pushRegs {
		if rr, ok := a64SaveReg[r]; ok {
			g.push(rr)
		}
	}
	g.subSP(spec.frameSize)

	// Initialize saved callee-saved registers so the body may read
	// them (and so mid-function code reads registers a fresh "function"
	// could not legally read — the §IV-E rejection property).
	for _, r := range spec.pushRegs {
		rr, ok := a64SaveReg[r]
		if !ok {
			continue
		}
		g.a.MovRegReg(rr, a64.X0)
		g.written = g.written.Add(rr)
	}

	// Early return: a branch over a complete epilogue + ret.
	if spec.earlyRet {
		g.a.CmpRegImm(a64.X0, int32(rng.Intn(4)))
		g.a.Bcond(arch.CondNE, "noearly")
		g.note(ehframe.CFI{Op: ehframe.CFARememberState})
		saveH, saveFP := g.height, g.fpCFA
		g.emitEpilogue(spec)
		g.a.Ret()
		g.note(ehframe.CFI{Op: ehframe.CFARestoreState})
		g.height, g.fpCFA = saveH, saveFP
		g.a.Label("noearly")
	}

	// Non-contiguous split: conditionally branch to the cold part.
	if spec.split {
		g.a.CmpRegImm(a64.X0, 0x1F)
		g.a.BcondSym(arch.CondE, spec.name+".cold")
		exports[spec.name+".resume"] = g.a.Len()
	}
	splitHeight := g.height

	// Body: filler interleaved with the assigned calls.
	calls := append([]callRef(nil), spec.callees...)
	for k := 0; k < spec.numOps; k++ {
		g.filler()
		if len(calls) > 0 && rng.Intn(3) == 0 {
			g.emitCall(calls[0])
			calls = calls[1:]
		}
	}
	for _, c := range calls {
		g.emitCall(c)
	}
	// Indirect calls through code-materialized pointers: the ADR
	// immediate is what §IV-E xref collection harvests from code.
	for _, sym := range spec.codePtrCalls {
		g.a.AdrNearSym(a64.X9, sym)
		g.a.Blr(a64.X9)
		g.written = g.written.Add(a64.X9)
	}

	// Export a mid-function label for thunk targets.
	exports[spec.name+".mid"] = g.a.Len()
	g.filler()

	// Jump table: the adrp-anchored absolute idiom or the PIC idiom
	// (adrp+add / ldrsw / add / br with table-relative entries).
	if spec.jumpTable > 0 {
		n := spec.jumpTable
		g.a.CmpRegImm(a64.X0, int32(n-1))
		g.a.Bcond(arch.CondA, "jtdef")
		g.a.AdrSym(a64.X10, spec.name+".tbl", 0)
		if spec.picTable {
			g.a.LdrswIdx4(a64.X9, a64.X10, a64.X0)
			g.a.AddRegRegReg(a64.X9, a64.X10, a64.X9)
		} else {
			g.a.LdrIdx8(a64.X9, a64.X10, a64.X0)
		}
		g.a.Br(a64.X9)
		g.written = g.written.Add(a64.X10)
		caseCalls := append([]string(nil), spec.caseCallees...)
		for k := 0; k < n; k++ {
			g.a.Label(fmt.Sprintf("jtcase%d", k))
			exports[fmt.Sprintf("%s.c%d", spec.name, k)] = g.a.Len()
			g.a.MovRegImm(a64.X9, int64(k*3+1))
			if len(caseCalls) > 0 {
				// A call visible only to analyses that resolve the
				// table — the callee's sole reference.
				g.a.MovRegImm(a64.X0, int64(k))
				g.a.BlSym(caseCalls[0])
				caseCalls = caseCalls[1:]
			}
			g.a.B("jtend")
		}
		g.a.Label("jtdef")
		g.a.MovRegImm(a64.X9, 0)
		g.a.Label("jtend")
		g.written = g.written.Add(a64.X9)
	}

	// Conditional non-returning branch into a block past the final ret.
	if spec.nonRetTail {
		g.a.CmpRegImm(a64.X0, 0x7F)
		g.a.Bcond(arch.CondE, "errblk")
	}

	// Epilogue.
	g.note(ehframe.CFI{Op: ehframe.CFARememberState})
	preH := g.height
	g.emitEpilogue(spec)
	if spec.tailCall != "" {
		g.a.BSym(spec.tailCall)
	} else {
		g.a.Ret()
	}
	g.note(ehframe.CFI{Op: ehframe.CFARestoreState})
	g.height = preH

	// Post-ret blocks.
	if spec.nonRetTail {
		g.a.Label("errblk")
		g.a.MovRegImm(a64.X0, 2)
		g.a.BlSym(symError)
		// No code after: the error-like callee never returns here.
	}

	code, fixups, err := g.a.Finish()
	if err != nil {
		return nil, nil, fmt.Errorf("synth: emit %s: %w", spec.name, err)
	}
	symOff := 0
	if spec.class == clsCFIErr {
		symOff = trueEntry // one word past the garbage prefix
	}
	hot := &chunk{
		name:    spec.name,
		code:    code,
		fixups:  fixups,
		exports: exports,
		cfi:     g.cfi,
		spec:    spec,
		hasFDE:  spec.hasFDE,
		hasSym:  spec.hasSym,
		symOff:  symOff,
		align:   16,
	}

	var cold *chunk
	if spec.split {
		cold, err = emitColdPartA64(spec, splitHeight, rng)
		if err != nil {
			return nil, nil, err
		}
	}
	return hot, cold, nil
}

// emitEpilogue restores the local frame, the saved registers, and the
// frame record.
func (g *cgenA64) emitEpilogue(spec *funcSpec) {
	g.addSP(spec.frameSize)
	for k := len(spec.pushRegs) - 1; k >= 0; k-- {
		if rr, ok := a64SaveReg[spec.pushRegs[k]]; ok {
			g.pop(rr)
		}
	}
	g.popFrame()
}

// emitColdPartA64 generates the distant part of a non-contiguous
// function.
func emitColdPartA64(spec *funcSpec, height int64, rng *rand.Rand) (*chunk, error) {
	g := &cgenA64{rng: rng, height: height}
	if spec.frame == frameRBP {
		// The owning function's CFA is x29-based: emit the matching
		// (incomplete, non-sp) CFI so Algorithm 1 must skip it.
		g.note(ehframe.CFI{Op: ehframe.CFADefCFAOffset, Offset: 16})
		g.note(ehframe.CFI{Op: ehframe.CFADefCFARegister, Reg: ehframe.DwA64FP})
		g.fpCFA = true
	} else {
		g.note(ehframe.CFI{Op: ehframe.CFADefCFAOffset, Offset: height})
	}
	// Cold parts begin with argument shuffles, so they pass the §IV-E
	// convention check — the paper removes them by merging
	// (Algorithm 1), never by validation.
	g.a.MovRegReg(a64.X9, a64.X0)
	for k := 0; k < 2+rng.Intn(4); k++ {
		g.filler()
	}
	if rng.Intn(3) == 0 {
		g.emitCall(callRef{sym: symExit1Arg()})
	}
	if spec.splitRet {
		g.emitEpilogue(spec)
		g.a.Ret()
	} else {
		g.a.BSym(spec.name + ".resume")
	}
	code, fixups, err := g.a.Finish()
	if err != nil {
		return nil, fmt.Errorf("synth: emit %s.cold: %w", spec.name, err)
	}
	return &chunk{
		name:   spec.name + ".cold",
		code:   code,
		fixups: fixups,
		cfi:    g.cfi,
		spec:   spec,
		isPart: true,
		parent: spec.name,
		hasFDE: true,
		hasSym: spec.hasSym,
		align:  8,
	}, nil
}

// emitExitA64 produces the exit-like non-returning leaf: the aarch64
// syscall-exit sequence (x8 carries the syscall number) ending in a
// permanently-undefined word.
func emitExitA64(spec *funcSpec) (*chunk, *chunk, error) {
	var a a64.Asm
	a.MovRegImm(a64.X8, 93) // __NR_exit on aarch64
	a.Svc()
	a.Udf()
	code, fixups, err := a.Finish()
	if err != nil {
		return nil, nil, err
	}
	return &chunk{
		name: spec.name, code: code, fixups: fixups,
		spec: spec, hasFDE: spec.hasFDE, hasSym: spec.hasSym, align: 16,
	}, nil, nil
}

// emitErrorA64 produces the error/error_at_line-like function: returns
// when the first argument is zero, exits otherwise (§IV-C).
func emitErrorA64(spec *funcSpec) (*chunk, *chunk, error) {
	var a a64.Asm
	a.TestRegReg(a64.X0, a64.X0)
	a.Bcond(arch.CondNE, "die")
	a.Ret()
	a.Label("die")
	a.BlSym(symExit)
	code, fixups, err := a.Finish()
	if err != nil {
		return nil, nil, err
	}
	return &chunk{
		name: spec.name, code: code, fixups: fixups,
		spec: spec, hasFDE: spec.hasFDE, hasSym: spec.hasSym, align: 16,
	}, nil, nil
}

// emitAsmA64 produces a hand-written assembly function: no FDE, no
// frame record (so prologue matchers cannot find it), reads only
// argument registers and its own temporaries.
func emitAsmA64(spec *funcSpec, rng *rand.Rand) (*chunk, *chunk, error) {
	var a a64.Asm
	a.MovRegReg(a64.X9, a64.X0)
	switch rng.Intn(3) {
	case 0:
		a.AddRegReg(a64.X9, a64.X1)
		a.LslRegImm(a64.X9, 2)
	case 1:
		a.MovRegImm(a64.X10, 0)
		a.AddRegImm(a64.X9, 17)
		a.MulRegReg(a64.X9, a64.X0)
	case 2:
		a.CmpRegImm(a64.X0, 16)
		a.Bcond(arch.CondB, "small")
		a.SubRegImm(a64.X9, 16)
		a.Label("small")
		a.AddRegImm(a64.X9, 1)
	}
	a.Ret()
	code, fixups, err := a.Finish()
	if err != nil {
		return nil, nil, err
	}
	return &chunk{
		name: spec.name, code: code, fixups: fixups,
		spec: spec, hasFDE: false, hasSym: spec.hasSym, align: 16,
	}, nil, nil
}

// emitClangTermA64 produces a __clang_call_terminate clone: saves one
// register, calls the exit-like function, no FDE.
func emitClangTermA64(spec *funcSpec) (*chunk, *chunk, error) {
	var a a64.Asm
	a.StrPre(a64.X0, -16)
	a.BlSym(symExit)
	code, fixups, err := a.Finish()
	if err != nil {
		return nil, nil, err
	}
	return &chunk{
		name: spec.name, code: code, fixups: fixups,
		spec: spec, hasFDE: false, hasSym: spec.hasSym, align: 16,
	}, nil, nil
}

// emitICFA64 produces an ICF-style clone: every instance emits the
// exact same leaf body (no fixups, no rng), so all copies are
// byte-identical at distinct addresses.
func emitICFA64(spec *funcSpec) (*chunk, *chunk, error) {
	var a a64.Asm
	a.MovRegReg(a64.X9, a64.X0)
	a.AddRegImm(a64.X9, 42)
	a.LslRegImm(a64.X9, 1)
	a.AddRegReg(a64.X9, a64.X1)
	a.Ret()
	code, fixups, err := a.Finish()
	if err != nil {
		return nil, nil, err
	}
	return &chunk{
		name: spec.name, code: code, fixups: fixups,
		spec: spec, hasFDE: spec.hasFDE, hasSym: spec.hasSym, align: 16,
	}, nil, nil
}

// emitThunkA64 produces a thunk branching into the middle of another
// function.
func emitThunkA64(spec *funcSpec) (*chunk, *chunk, error) {
	var a a64.Asm
	a.BSym(spec.thunkMidOf + ".mid")
	code, fixups, err := a.Finish()
	if err != nil {
		return nil, nil, err
	}
	return &chunk{
		name: spec.name, code: code, fixups: fixups,
		spec: spec, hasFDE: spec.hasFDE, hasSym: spec.hasSym, align: 16,
	}, nil, nil
}

// makeIslandA64 produces a data blob that begins like a canonical
// aarch64 prologue (stp x29, x30, [sp, #-16]!; mov x29, sp) and
// continues with word-aligned noise.
func makeIslandA64(rng *rand.Rand) []byte {
	out := []byte{0xFD, 0x7B, 0xBF, 0xA9, 0xFD, 0x03, 0x00, 0x91}
	n := 4 + rng.Intn(8)
	for k := 0; k < n; k++ {
		for b := 0; b < 4; b++ {
			out = append(out, byte(rng.Intn(256)))
		}
	}
	return out
}

// makeCodeIslandA64 produces .text data that decodes as a complete,
// convention-respecting A64 function body — never referenced and
// absent from the ground truth.
func makeCodeIslandA64(rng *rand.Rand) ([]byte, error) {
	var a a64.Asm
	a.StpPre(a64.X29, a64.X30, -16)
	a.MovFPSP()
	sz := int32(16 + rng.Intn(3)*16)
	a.SubSP(sz)
	a.MovRegReg(a64.X9, a64.X0)
	for k := 0; k < 2+rng.Intn(3); k++ {
		a.AddRegImm(a64.X9, int32(rng.Intn(64)+1))
	}
	a.AddSP(sz)
	a.LdpPost(a64.X29, a64.X30, 16)
	a.Ret()
	code, fixups, err := a.Finish()
	if err != nil || len(fixups) != 0 {
		return nil, fmt.Errorf("synth: a64 code island: %v", err)
	}
	return code, nil
}
