package synth

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"fetch/internal/arch"
	"fetch/internal/elfx"
	"fetch/internal/groundtruth"
)

// perturb applies the Config version-pair knobs to the assembled image:
// an in-place, layout-preserving rewrite of PerturbK function bodies
// modeling the next build of the same program. In the default immediate
// mode the rewrite is analysis-equivalent (only unmapped constant
// values change); with PerturbRetarget it redirects one direct call per
// function, changing real analysis facts while still preserving layout.
// The walk decodes through the image's ISA; the byte-level rewrites
// dispatch per backend.
func perturb(img *elfx.Image, truth *groundtruth.Truth, cfg *Config) error {
	if cfg.PerturbK <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.PerturbSeed ^ 0x5bf03635))
	isa := img.ISA()

	// Candidate bodies: compiled FDE-carrying functions whose extents
	// lie inside the FDE ranges the delta roster is built from, and
	// whose control flow stays inside the extent — split functions jump
	// to their cold part and tail-callers jump to their target, both of
	// which a range-local verification walk rightly refuses to certify.
	splitParent := make(map[uint64]bool, len(truth.Parts))
	for i := range truth.Parts {
		splitParent[truth.Parts[i].Parent] = true
	}
	var cands []*groundtruth.Func
	for i := range truth.Funcs {
		f := &truth.Funcs[i]
		if f.Class == groundtruth.ClassNormal && f.HasFDE && f.Size >= 10 &&
			!splitParent[f.Addr] && len(f.TailTargets) == 0 {
			cands = append(cands, f)
		}
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })

	// Retarget pool: call-reachable compiled functions (redirecting a
	// call there keeps the callee a plausible, FDE-covered function).
	var pool []uint64
	if cfg.PerturbRetarget {
		for i := range truth.Funcs {
			f := &truth.Funcs[i]
			if f.Class == groundtruth.ClassNormal && f.HasFDE &&
				f.Reach == groundtruth.ReachCall && !f.NonRet {
				pool = append(pool, f.Addr)
			}
		}
		if len(pool) < 2 {
			return fmt.Errorf("synth: too few retarget candidates (%d)", len(pool))
		}
	}

	done := 0
	for _, f := range cands {
		if done >= cfg.PerturbK {
			break
		}
		if !cfg.PerturbRetarget && !certifiable(img, isa, f) {
			// The delta verifier enumerates non-return environments: in
			// the one where every callee returns, fall-through must still
			// terminate before the extent end, or the local walk escapes
			// and the range soundly falls back. Perturbing such a body
			// would make the version pair unservable by construction.
			continue
		}
		if perturbFunc(img, isa, f, rng, pool, cfg.PerturbRetarget) {
			done++
		}
	}
	if done < cfg.PerturbK {
		return fmt.Errorf("synth: perturbed only %d of %d requested functions", done, cfg.PerturbK)
	}
	return nil
}

// certifiable reports whether a range-local verification walk can
// certify the function's extent under every non-return environment:
// the whole extent decodes linearly (no in-text jump-table data, which
// would also pin the range via its table reads) and the last
// instruction is a terminator, so no fall-through run — not even one
// treating every callee as returning — can reach the extent end.
func certifiable(img *elfx.Image, isa arch.ISA, f *groundtruth.Func) bool {
	sec, ok := img.SectionAt(f.Addr)
	if !ok || f.Addr+f.Size > sec.End() {
		return false
	}
	off := f.Addr - sec.Addr
	end := off + f.Size
	terminates := false
	for off < end {
		in, err := isa.Decode(sec.Data[off:end], sec.Addr+off)
		if err != nil || in.Op == arch.OpJmpInd {
			return false
		}
		terminates = in.Terminates()
		off += uint64(in.Len)
	}
	return terminates
}

// perturbFunc rewrites one function body in place. It walks the body
// linearly from the entry, stopping at the first terminator or decode
// failure (past either, linear decode may be out of sync with real
// instruction boundaries — in-text jump tables follow their indirect
// jump). Returns whether at least one rewrite landed.
func perturbFunc(img *elfx.Image, isa arch.ISA, f *groundtruth.Func, rng *rand.Rand, pool []uint64, retarget bool) bool {
	sec, ok := img.SectionAt(f.Addr)
	if !ok || sec.Flags&elfx.FlagExec == 0 || f.Addr+f.Size > sec.End() {
		return false
	}
	a64 := isa.Name() == "a64"
	off := f.Addr - sec.Addr
	end := off + f.Size
	patched := false
	for off < end {
		in, err := isa.Decode(sec.Data[off:end], sec.Addr+off)
		if err != nil {
			break
		}
		b := sec.Data[off : off+uint64(in.Len)]
		if retarget {
			ok := false
			if a64 {
				ok = rewriteBlTarget(b, &in, rng, pool)
			} else {
				ok = rewriteCallTarget(b, &in, rng, pool)
			}
			if ok {
				return true
			}
		} else {
			ok := false
			if a64 {
				ok = rewriteMovzImm(b, img, rng)
			} else {
				ok = rewriteMovImm(b, img, rng)
			}
			if ok {
				patched = true
			}
		}
		if in.Terminates() {
			break
		}
		off += uint64(in.Len)
	}
	return patched
}

// rewriteMovImm replaces the immediate of a plain x86-64 `mov r32,
// imm32` (the filler shape: optional 0x41 REX, 0xB8+r, imm32) with a
// fresh unmapped value. Both the old and new immediates must be
// unmapped addresses, so the disassembler's constant harvest — and with
// it every recorded analysis fact — is unchanged: the rewrite is
// analysis-equivalent by construction.
func rewriteMovImm(b []byte, img *elfx.Image, rng *rand.Rand) bool {
	switch {
	case len(b) == 5 && b[0] >= 0xB8 && b[0] <= 0xBF:
	case len(b) == 6 && b[0] == 0x41 && b[1] >= 0xB8 && b[1] <= 0xBF:
	default:
		return false
	}
	imm := b[len(b)-4:]
	old := binary.LittleEndian.Uint32(imm)
	if img.IsMapped(uint64(old)) {
		// A mapped value would have been harvested as a pointer-sized
		// constant; leave it alone so the constant set stays equal.
		return false
	}
	// New values stay in (0, 0xF00): below every image base (PIE maps
	// at 0x1000), hence never harvested either.
	nv := uint32(1 + rng.Intn(0xefe))
	if nv == old {
		nv++
	}
	binary.LittleEndian.PutUint32(imm, nv)
	return true
}

// rewriteMovzImm is the aarch64 twin: it replaces the imm16 of a plain
// 64-bit `movz xN, #imm16` (the MovRegImm filler shape, hw slot 0)
// under the same unmapped-before/unmapped-after rule. A zero immediate
// is left alone: movz to the gate register with #0 is the §IV-C
// "error(0) returns" argument, and no non-zero replacement preserves
// that gate state.
func rewriteMovzImm(b []byte, img *elfx.Image, rng *rand.Rand) bool {
	if len(b) != 4 {
		return false
	}
	w := binary.LittleEndian.Uint32(b)
	if w&0xFFE00000 != 0xD2800000 {
		return false
	}
	old := (w >> 5) & 0xFFFF
	if old == 0 || img.IsMapped(uint64(old)) {
		return false
	}
	nv := uint32(1 + rng.Intn(0xefe))
	if nv == old {
		nv++
	}
	binary.LittleEndian.PutUint32(b, w&^uint32(0xFFFF<<5)|nv<<5)
	return true
}

// rewriteCallTarget redirects a direct near call (E8 rel32) to a
// different function from the pool, when the displacement fits.
func rewriteCallTarget(b []byte, in *arch.Inst, rng *rand.Rand, pool []uint64) bool {
	if in.Op != arch.OpCall || !in.HasTarget || len(b) != 5 || b[0] != 0xE8 {
		return false
	}
	next := in.Addr + uint64(in.Len)
	for _, i := range rng.Perm(len(pool)) {
		t := pool[i]
		if t == in.Target {
			continue
		}
		rel := int64(t) - int64(next)
		if rel < -1<<31 || rel >= 1<<31 {
			continue
		}
		binary.LittleEndian.PutUint32(b[1:], uint32(int32(rel)))
		return true
	}
	return false
}

// rewriteBlTarget redirects an aarch64 `bl` (imm26, relative to the
// instruction word) to a different function from the pool.
func rewriteBlTarget(b []byte, in *arch.Inst, rng *rand.Rand, pool []uint64) bool {
	if in.Op != arch.OpCall || !in.HasTarget || len(b) != 4 {
		return false
	}
	w := binary.LittleEndian.Uint32(b)
	if w>>26 != 0x25 {
		return false
	}
	for _, i := range rng.Perm(len(pool)) {
		t := pool[i]
		if t == in.Target {
			continue
		}
		rel := int64(t) - int64(in.Addr)
		if rel&3 != 0 || rel < -(1<<27) || rel >= 1<<27 {
			continue
		}
		binary.LittleEndian.PutUint32(b, 0x94000000|uint32(rel>>2)&0x03FFFFFF)
		return true
	}
	return false
}
