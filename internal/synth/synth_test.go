package synth

import (
	"testing"

	"fetch/internal/ehframe"
	"fetch/internal/elfx"
	"fetch/internal/groundtruth"
	"fetch/internal/x64"
)

func genTest(t *testing.T, cfg Config) (*elfx.Image, *groundtruth.Truth) {
	t.Helper()
	im, truth, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return im, truth
}

func defaultTestConfig(seed int64) Config {
	return DefaultConfig("test", seed, O2, GCC, LangC)
}

func TestGenerateBasicShape(t *testing.T) {
	im, truth := genTest(t, defaultTestConfig(1))
	for _, name := range []string{".text", ".rodata", ".data", ".eh_frame"} {
		if _, ok := im.Section(name); !ok {
			t.Errorf("missing section %s", name)
		}
	}
	if len(truth.Funcs) != 120 {
		t.Errorf("got %d true functions, want 120", len(truth.Funcs))
	}
	if im.Entry == 0 {
		t.Error("entry not set")
	}
	if !truth.IsStart(im.Entry) {
		t.Error("entry is not a true start")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	im1, _ := genTest(t, defaultTestConfig(7))
	im2, _ := genTest(t, defaultTestConfig(7))
	s1, _ := im1.Section(".text")
	s2, _ := im2.Section(".text")
	if len(s1.Data) != len(s2.Data) {
		t.Fatalf("text sizes differ: %d vs %d", len(s1.Data), len(s2.Data))
	}
	for k := range s1.Data {
		if s1.Data[k] != s2.Data[k] {
			t.Fatalf("text differs at offset %d", k)
		}
	}
}

func TestGenerateEhFrameParses(t *testing.T) {
	im, truth := genTest(t, defaultTestConfig(2))
	eh, _ := im.Section(".eh_frame")
	sec, err := ehframe.Decode(eh.Data, eh.Addr)
	if err != nil {
		t.Fatalf("eh_frame decode: %v", err)
	}
	// Every FDE must cover executable bytes.
	for _, f := range sec.FDEs {
		if !im.IsExec(f.PCBegin) {
			t.Errorf("FDE %#x not in exec section", f.PCBegin)
		}
	}
	// FDE count = funcs with FDE + non-contig parts.
	want := truth.NumWithFDE() + len(truth.Parts)
	if len(sec.FDEs) != want {
		t.Errorf("decoded %d FDEs, want %d", len(sec.FDEs), want)
	}
	// All truth funcs with HasFDE have an FDE starting at their addr,
	// except CFI-error functions whose FDE is skewed by -1.
	errAddr := map[uint64]bool{}
	for _, a := range truth.CFIErrorAddrs {
		errAddr[a+1] = true
	}
	for _, fn := range truth.Funcs {
		if !fn.HasFDE {
			continue
		}
		if errAddr[fn.Addr] {
			if _, ok := sec.FDEStartingAt(fn.Addr - 1); !ok {
				t.Errorf("CFI-error func %s: no FDE at addr-1", fn.Name)
			}
			continue
		}
		if _, ok := sec.FDEStartingAt(fn.Addr); !ok {
			t.Errorf("func %s at %#x has no FDE", fn.Name, fn.Addr)
		}
	}
	// Part FDEs exist too.
	for _, p := range truth.Parts {
		if _, ok := sec.FDEStartingAt(p.Addr); !ok {
			t.Errorf("part %s at %#x has no FDE", p.Name, p.Addr)
		}
	}
}

func TestGenerateCodeDecodes(t *testing.T) {
	im, truth := genTest(t, defaultTestConfig(3))
	// Every true function start must decode as valid code from its
	// entry for at least a few instructions.
	for _, fn := range truth.Funcs {
		w, ok := im.BytesToSectionEnd(fn.Addr)
		if !ok {
			t.Fatalf("func %s at %#x unmapped", fn.Name, fn.Addr)
		}
		off := 0
		for k := 0; k < 4 && off < int(fn.Size); k++ {
			in, err := x64.Decode(w[off:], fn.Addr+uint64(off))
			if err != nil {
				t.Errorf("func %s: decode at +%d: %v", fn.Name, off, err)
				break
			}
			off += in.Len
		}
	}
}

func TestGenerateHeightsAtSplitJumps(t *testing.T) {
	// Non-contiguous parents with rsp frames must expose complete CFI
	// heights; rbp-framed parents must not.
	cfg := defaultTestConfig(4)
	cfg.NonContigRate = 0.5 // force many splits
	im, truth := genTest(t, cfg)
	eh, _ := im.Section(".eh_frame")
	sec, err := ehframe.Decode(eh.Data, eh.Addr)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(truth.Parts) == 0 {
		t.Fatal("no parts generated at 50% rate")
	}
	var complete, incomplete int
	for _, p := range truth.Parts {
		fde, ok := sec.FDEStartingAt(p.Parent)
		if !ok {
			t.Fatalf("parent FDE missing for %s", p.Name)
		}
		ht := fde.Heights()
		if p.IncompleteCFI {
			incomplete++
			if ht.Complete {
				t.Errorf("part %s: parent CFI should be incomplete", p.Name)
			}
		} else {
			complete++
			if !ht.Complete {
				t.Errorf("part %s: parent CFI should be complete", p.Name)
			}
		}
	}
	if complete == 0 {
		t.Error("no complete-CFI parents generated")
	}
}

func TestGenerateTailCallHeightZero(t *testing.T) {
	// At every generated tail-call jump the CFI height must be zero:
	// decode each tail-calling function, find the terminal jmp whose
	// target is the tail target, and query the height there.
	cfg := defaultTestConfig(5)
	cfg.TailCallRate = 0.5
	im, truth := genTest(t, cfg)
	eh, _ := im.Section(".eh_frame")
	sec, err := ehframe.Decode(eh.Data, eh.Addr)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	checked := 0
	for _, fn := range truth.Funcs {
		if len(fn.TailTargets) == 0 || !fn.HasFDE {
			continue
		}
		fde, ok := sec.FDEStartingAt(fn.Addr)
		if !ok {
			continue
		}
		ht := fde.Heights()
		if !ht.Complete {
			continue // rbp-framed tail callers are legitimately opaque
		}
		// Scan the function for the direct jmp to the tail target.
		w, _ := im.BytesToSectionEnd(fn.Addr)
		off := 0
		for off < int(fn.Size) {
			in, err := x64.Decode(w[off:], fn.Addr+uint64(off))
			if err != nil {
				break
			}
			if in.Op == x64.OpJmp && in.HasTarget && in.Target == fn.TailTargets[0] {
				h, ok := ht.HeightAt(in.Addr)
				if !ok {
					t.Errorf("%s: no height at tail jmp %#x", fn.Name, in.Addr)
				} else if h != 0 {
					t.Errorf("%s: height at tail jmp = %d, want 0", fn.Name, h)
				}
				checked++
				break
			}
			off += in.Len
		}
	}
	if checked == 0 {
		t.Fatal("no tail-call jumps verified")
	}
}

func TestGenerateELFRoundTrip(t *testing.T) {
	im, _ := genTest(t, defaultTestConfig(6))
	raw, err := elfx.WriteELF(im)
	if err != nil {
		t.Fatalf("WriteELF: %v", err)
	}
	got, err := elfx.LoadELF(raw)
	if err != nil {
		t.Fatalf("LoadELF: %v", err)
	}
	// eh_frame must decode identically after the round trip.
	eh, ok := got.Section(".eh_frame")
	if !ok {
		t.Fatal("eh_frame lost in round trip")
	}
	sec, err := ehframe.Decode(eh.Data, eh.Addr)
	if err != nil {
		t.Fatalf("decode after round trip: %v", err)
	}
	if len(sec.FDEs) == 0 {
		t.Fatal("no FDEs after round trip")
	}
	if len(got.Symbols) != len(im.Symbols) {
		t.Errorf("symbols: %d after round trip, want %d", len(got.Symbols), len(im.Symbols))
	}
}

func TestGenerateSymbolsMatchTruth(t *testing.T) {
	im, truth := genTest(t, defaultTestConfig(8))
	// Every function with a symbol: symbol addr == truth addr.
	for _, fn := range truth.Funcs {
		sym, ok := im.SymbolNamed(fn.Name)
		if !ok {
			t.Errorf("func %s has no symbol", fn.Name)
			continue
		}
		if sym.Addr != fn.Addr {
			t.Errorf("func %s symbol at %#x, truth %#x", fn.Name, sym.Addr, fn.Addr)
		}
	}
	// Parts carry their own symbols (the paper's observation that
	// symbols share the non-contiguous false-positive problem).
	for _, p := range truth.Parts {
		sym, ok := im.SymbolNamed(p.Name)
		if !ok {
			t.Errorf("part %s has no symbol", p.Name)
			continue
		}
		if sym.Addr != p.Addr {
			t.Errorf("part %s symbol at %#x, truth %#x", p.Name, sym.Addr, p.Addr)
		}
	}
}

func TestGenerateDataSlotsHoldFunctionAddrs(t *testing.T) {
	cfg := defaultTestConfig(9)
	cfg.IndirectOnlyRate = 0.1
	im, truth := genTest(t, cfg)
	ds, _ := im.Section(".data")
	// Collect all 8-byte values in .data; every indirect-only function
	// with a data slot must appear.
	values := map[uint64]bool{}
	for off := 0; off+8 <= len(ds.Data); off += 8 {
		v, _ := im.ReadU64(ds.Addr + uint64(off))
		values[v] = true
	}
	found := 0
	for _, fn := range truth.Funcs {
		if fn.Reach == groundtruth.ReachIndirectOnly && values[fn.Addr] {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no indirect-only function addresses in .data")
	}
}

func TestGenerateClassInventory(t *testing.T) {
	cfg := defaultTestConfig(10)
	cfg.NumFuncs = 400
	cfg.AsmRate = 0.02
	cfg.TailOnlyRate = 0.02
	cfg.IndirectOnlyRate = 0.02
	cfg.UnreachableAsmRate = 0.01
	cfg.CFIErrorCount = 1
	im, truth := genTest(t, cfg)
	_ = im
	if truth.CountReach(groundtruth.ReachTailOnly) == 0 {
		t.Error("no tail-only functions")
	}
	if truth.CountReach(groundtruth.ReachIndirectOnly) == 0 {
		t.Error("no indirect-only functions")
	}
	if truth.CountReach(groundtruth.ReachUnreachable) == 0 {
		t.Error("no unreachable functions")
	}
	if len(truth.CFIErrorAddrs) != 1 {
		t.Errorf("CFI errors = %d, want 1", len(truth.CFIErrorAddrs))
	}
	var asm int
	for _, fn := range truth.Funcs {
		if fn.Class == groundtruth.ClassAsm {
			asm++
			if fn.HasFDE {
				t.Errorf("asm func %s has an FDE", fn.Name)
			}
		}
	}
	if asm == 0 {
		t.Error("no asm functions")
	}
}

func TestGenerateValidateRejectsBadConfig(t *testing.T) {
	cfg := defaultTestConfig(1)
	cfg.NumFuncs = 2
	if _, _, err := Generate(cfg); err == nil {
		t.Error("tiny NumFuncs accepted")
	}
	cfg = defaultTestConfig(1)
	cfg.AsmRate = 1.5
	if _, _, err := Generate(cfg); err == nil {
		t.Error("rate > 1 accepted")
	}
}
