package synth

import (
	"fmt"
	"math/rand"

	"fetch/internal/groundtruth"
	"fetch/internal/x64"
)

// countFor converts an expected value into an integer count, flipping a
// biased coin for the fractional part so small rates still occur across
// a corpus.
func countFor(rng *rand.Rand, expected float64) int {
	n := int(expected)
	if rng.Float64() < expected-float64(n) {
		n++
	}
	return n
}

// buildSpecs assigns classes, features, and reference wiring for all
// functions of one binary.
func buildSpecs(cfg *Config, rng *rand.Rand) ([]*funcSpec, error) {
	n := cfg.NumFuncs
	specs := make([]*funcSpec, 0, n)

	mk := func(class funcClass) *funcSpec {
		s := &funcSpec{
			idx:         len(specs),
			name:        fmt.Sprintf("f%03d", len(specs)),
			class:       class,
			hasFDE:      true,
			hasSym:      true,
			codePtrFrom: -1,
		}
		specs = append(specs, s)
		return s
	}

	main := mk(clsMain)
	main.name = "main"
	main.reach = groundtruth.ReachEntry

	exit := mk(clsExit)
	exit.name = symExit
	exit.reach = groundtruth.ReachCall
	exit.nonRet = true

	errf := mk(clsError)
	errf.name = symError
	errf.reach = groundtruth.ReachCall

	// Special-class budget.
	fn := float64(n)
	nAsm := countFor(rng, cfg.AsmRate*fn)
	nTailFDE := countFor(rng, cfg.TailOnlyRate*fn*0.4)
	nTailAsm := countFor(rng, cfg.TailOnlyRate*fn*0.6)
	nIndir := countFor(rng, cfg.IndirectOnlyRate*fn)
	nUnreach := countFor(rng, cfg.UnreachableAsmRate*fn)
	nThunk := countFor(rng, 0.008*fn)
	nCFIErr := cfg.CFIErrorCount

	type classCount struct {
		class funcClass
		count int
	}
	for _, cc := range []classCount{
		{clsAsm, nAsm}, {clsTailFDE, nTailFDE}, {clsTailAsm, nTailAsm},
		{clsIndirAsm, nIndir}, {clsUnreach, nUnreach},
		{clsThunkMid, nThunk}, {clsCFIErr, nCFIErr},
	} {
		for k := 0; k < cc.count && len(specs) < n-1; k++ {
			s := mk(cc.class)
			switch cc.class {
			case clsAsm:
				s.hasFDE = false
				s.reach = groundtruth.ReachCall
			case clsTailFDE:
				s.reach = groundtruth.ReachTailOnly
			case clsTailAsm:
				s.hasFDE = false
				s.reach = groundtruth.ReachTailOnly
			case clsIndirAsm:
				s.hasFDE = false
				s.reach = groundtruth.ReachIndirectOnly
				if rng.Intn(5) < 3 {
					s.dataPtrSlot = true
				} // else wired to a code lea below
			case clsUnreach:
				s.hasFDE = false
				s.reach = groundtruth.ReachUnreachable
			case clsThunkMid:
				s.reach = groundtruth.ReachCall
			case clsCFIErr:
				s.reach = groundtruth.ReachIndirectOnly
				s.dataPtrSlot = true
			}
		}
	}
	// ICF clones: byte-identical leaf bodies at distinct addresses,
	// each a call-reachable true function with its own FDE.
	for k := 0; k < cfg.ICFCount && len(specs) < n-1; k++ {
		s := mk(clsICF)
		s.reach = groundtruth.ReachCall
	}
	// Xref chain: link 0 sits in a .data pointer slot; each further
	// link is referenced only by the movabs buried past the validation
	// walk bound in the previous link's body, so pointer detection
	// needs one committed round per link to see the whole chain.
	var chain []*funcSpec
	for k := 0; k < cfg.XrefChainLen && len(specs) < n-1; k++ {
		s := mk(clsXrefChain)
		s.name = fmt.Sprintf("xchain%02d", k)
		s.hasFDE = false
		s.reach = groundtruth.ReachIndirectOnly
		if k == 0 {
			s.dataPtrSlot = true
		}
		chain = append(chain, s)
	}
	for k := 0; k+1 < len(chain); k++ {
		chain[k].chainNext = chain[k+1].name
	}
	if cfg.ClangTerminate && len(specs) < n-1 {
		s := mk(clsClangTerm)
		s.name = "__clang_call_terminate"
		s.hasFDE = false
		// Referenced only from exception tables, modeled as a data
		// pointer slot — recoverable via §IV-E pointer detection.
		s.reach = groundtruth.ReachIndirectOnly
		s.dataPtrSlot = true
	}

	// Fill the remainder with normal compiled functions.
	for len(specs) < n {
		s := mk(clsNormal)
		s.reach = groundtruth.ReachCall
	}

	// Feature assignment for compiled functions (normal, main, the
	// tail-only compiled class, and the CFI-error class share the
	// compiled code generator).
	isCompiled := func(s *funcSpec) bool {
		switch s.class {
		case clsNormal, clsMain, clsTailFDE, clsCFIErr:
			return true
		}
		return false
	}
	for _, s := range specs {
		if !isCompiled(s) {
			continue
		}
		if rng.Float64() < cfg.RBPFrameRate {
			s.frame = frameRBP
		} else {
			s.frame = frameRSP
		}
		pool := []x64.Reg{x64.RBX, x64.R12, x64.R13, x64.R14}
		nPush := rng.Intn(4)
		for k := 0; k < nPush; k++ {
			s.pushRegs = append(s.pushRegs, pool[k])
		}
		s.frameSize = int32(rng.Intn(5)) * 16
		s.numOps = 4 + rng.Intn(8)
		// A slice of functions use enter/leave framing (kept free of
		// saved registers and splits for simplicity).
		if s.class == clsNormal && s.frame == frameRSP && !s.split && rng.Float64() < 0.10 {
			s.useEnter = true
			s.pushRegs = nil
			if s.frameSize == 0 {
				s.frameSize = 16
			}
		}
		if s.class == clsNormal {
			if rng.Float64() < cfg.NonContigRate {
				s.split = true
				s.splitRet = rng.Intn(2) == 0
				s.useEnter = false // splits keep the standard framing
				// Parent CFA style determines whether Algorithm 1 can
				// merge the part back (§V-C residue rate).
				if rng.Float64() < 0.08 {
					s.frame = frameRBP
				} else {
					s.frame = frameRSP
				}
				// The cold part reads rbx; make sure it is saved.
				if len(s.pushRegs) == 0 {
					s.pushRegs = []x64.Reg{x64.RBX}
				}
			}
			if rng.Float64() < cfg.JumpTableRate {
				s.jumpTable = 3 + rng.Intn(6)
				s.picTable = rng.Float64() < cfg.PICTableRate
			}
			if rng.Float64() < cfg.NonRetCallRate {
				s.nonRetTail = true
			}
			if rng.Float64() < cfg.StartPadRate {
				s.startPad = 4 + 4*rng.Intn(2)
			}
		}
		if rng.Float64() < cfg.EarlyRetRate {
			s.earlyRet = true
		}
		if s.class == clsMain {
			s.numOps += 6
		}
		if s.class == clsCFIErr {
			// Keep the shape simple and deterministic for the
			// Figure-6b byte trick: entry begins with push rbx.
			s.frame = frameRSP
			s.startPad = 0
			s.earlyRet = false
			s.split = false
			s.pushRegs = []x64.Reg{x64.RBX}
		}
	}

	// Case-only functions: their only call site lives inside a
	// jump-table case block. Force a prologue-less shape so pattern
	// matchers cannot recover them either.
	var jtHosts []*funcSpec
	for _, s := range specs {
		if s.class == clsNormal && s.jumpTable > 0 && !s.caseOnly {
			jtHosts = append(jtHosts, s)
		}
	}
	nCaseOnly := countFor(rng, cfg.CaseOnlyRate*fn)
	if nCaseOnly > 0 && len(jtHosts) == 0 {
		// Promote one plain function into a jump-table host.
		for _, s := range specs {
			if s.class == clsNormal && !s.split {
				s.jumpTable = 4
				jtHosts = append(jtHosts, s)
				break
			}
		}
	}
	if len(jtHosts) > 0 {
		assigned := 0
		for _, s := range specs {
			if assigned >= nCaseOnly {
				break
			}
			if s.class != clsNormal || s.split || s.jumpTable > 0 ||
				s.tailCall != "" || s.caseOnly {
				continue
			}
			host := jtHosts[rng.Intn(len(jtHosts))]
			if len(host.caseCallees) >= host.jumpTable {
				continue
			}
			s.caseOnly = true
			s.noEndbr = true
			s.pushRegs = nil
			s.frameSize = 0
			s.useEnter = false
			s.frame = frameRSP
			s.startPad = 0
			host.caseCallees = append(host.caseCallees, s.name)
			assigned++
		}
	}

	// Truncated and overlapping FDEs land on plain compiled functions
	// (assigned after case-only promotion, which strips prologues):
	// truncation halves the FDE's PCRange (PC Begin stays exact);
	// overlap plants an extra bogus FDE at the host's .mid offset. A
	// host takes at most one of the two roles.
	if cfg.TruncFDECount > 0 || cfg.OverlapFDECount > 0 {
		var hosts []*funcSpec
		for _, s := range specs {
			if s.class == clsNormal && !s.split && !s.caseOnly {
				hosts = append(hosts, s)
			}
		}
		nTrunc, nOver := cfg.TruncFDECount, cfg.OverlapFDECount
		for _, hi := range rng.Perm(len(hosts)) {
			s := hosts[hi]
			switch {
			case nTrunc > 0:
				s.truncFDE = true
				nTrunc--
			case nOver > 0:
				s.overlapFDE = true
				nOver--
			}
			if nTrunc == 0 && nOver == 0 {
				break
			}
		}
		if nTrunc > 0 || nOver > 0 {
			// Under-planting silently would weaken the adversarial
			// shape while the truth looks intentional.
			return nil, fmt.Errorf("synth: only %d eligible hosts for %d truncated + %d overlap FDEs",
				len(hosts), cfg.TruncFDECount, cfg.OverlapFDECount)
		}
	}

	// --- Reference wiring ---

	var normals []*funcSpec // compiled functions that can host calls
	for _, s := range specs {
		if (s.class == clsNormal && !s.caseOnly) || s.class == clsMain {
			normals = append(normals, s)
		}
	}
	if len(normals) < 3 {
		return nil, fmt.Errorf("synth: too few normal functions (%d)", len(normals))
	}
	randNormal := func() *funcSpec { return normals[rng.Intn(len(normals))] }

	// Every call-reachable function gets at least one direct caller.
	// The exit-like and error-like runtime functions are excluded: a
	// stray mid-body `call exit` would make its caller genuinely
	// non-returning and falsify the ground truth. Exit is reached
	// through the error-like function; error through the dedicated
	// call sites wired below.
	for _, s := range specs {
		if s.reach != groundtruth.ReachCall || s.class == clsMain ||
			s.class == clsExit || s.class == clsError || s.caseOnly {
			continue
		}
		caller := randNormal()
		for caller == s {
			caller = randNormal()
		}
		caller.callees = append(caller.callees, callRef{sym: s.name})
	}
	// Extra call edges for graph density.
	for _, s := range normals {
		for k := rng.Intn(3); k > 0; k-- {
			t := randNormal()
			if t != s {
				s.callees = append(s.callees, callRef{sym: t.name})
			}
		}
	}
	// A few returning calls to the error-like function (first arg 0),
	// exercising the §IV-C backward slice.
	for k := 0; k < 2; k++ {
		c := randNormal()
		c.callees = append(c.callees, callRef{sym: symError, isErr: true, errArg: 0})
	}

	// Ordinary tail calls to multi-referenced functions. Half target
	// the next normal function in layout order, creating the adjacent
	// pairs ANGR's function-merging heuristic wrongly merges.
	for i, s := range normals {
		if s.class != clsNormal || s.tailCall != "" || s.nonRetTail {
			continue
		}
		if rng.Float64() >= cfg.TailCallRate {
			continue
		}
		var target *funcSpec
		if rng.Intn(2) == 0 && i+1 < len(normals) && normals[i+1].class == clsNormal {
			target = normals[i+1]
		} else {
			target = randNormal()
		}
		if target != s {
			s.tailCall = target.name
		}
	}
	// Tail-only functions: exactly one tail-call reference each.
	for _, s := range specs {
		if s.reach != groundtruth.ReachTailOnly {
			continue
		}
		var caller *funcSpec
		for try := 0; try < 50; try++ {
			c := randNormal()
			if c.tailCall == "" && c != s && c.class == clsNormal && !c.nonRetTail {
				caller = c
				break
			}
		}
		if caller == nil {
			// No free tail-call slot: demote to an ordinary callee so
			// the function stays reachable and the truth stays honest.
			s.reach = groundtruth.ReachCall
			c := randNormal()
			c.callees = append(c.callees, callRef{sym: s.name})
			continue
		}
		caller.tailCall = s.name
	}
	// Indirect-only functions not covered by a data slot get their
	// address materialized by a lea in some caller. Xref-chain links
	// are excluded: their one reference is the movabs inside the
	// previous link, and an extra lea would collapse the chain into a
	// single detection round.
	for _, s := range specs {
		if s.class == clsXrefChain {
			continue
		}
		if s.reach == groundtruth.ReachIndirectOnly && !s.dataPtrSlot {
			host := randNormal()
			s.codePtrFrom = host.idx
			host.codePtrCalls = append(host.codePtrCalls, s.name)
		}
	}
	// Thunks need targets with a .mid export (any compiled function).
	for _, s := range specs {
		if s.class == clsThunkMid {
			s.thunkMidOf = randNormal().name
		}
	}
	return specs, nil
}
