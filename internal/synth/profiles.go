package synth

import (
	"fmt"
	"sort"
)

// adversarialProfiles maps each named shape profile to the mutation it
// applies on top of DefaultConfig. Each profile concentrates one class
// of real-world ELF layout the benign corpus never exercises; the
// kitchen-sink profile combines them all.
var adversarialProfiles = map[string]func(*Config){
	// pie: ET_DYN image at a low base with PIC-style jump tables — the
	// default layout of every distro-shipped binary since ~2017.
	"pie": func(c *Config) {
		c.PIE = true
		c.PICTableRate = 0.8
		c.JumpTableRate = 0.08
	},
	// split-text: hot/cold section splitting; every cold part lands in
	// .text.unlikely a page away from its function.
	"split-text": func(c *Config) {
		c.SplitText = true
		c.NonContigRate = 0.20
		c.RBPFrameRate = 0.25
	},
	// jump-tables: dense bounded indirect jumps, both .rodata and
	// in-text tables, PIC and absolute idioms, case-only callees.
	"jump-tables": func(c *Config) {
		c.JumpTableRate = 0.40
		c.TextJumpTableRate = 0.5
		c.PICTableRate = 0.5
		c.CaseOnlyRate = 0.05
	},
	// icf: byte-identical duplicate bodies at distinct addresses, the
	// shape content-hash deduplication collapses incorrectly.
	"icf": func(c *Config) {
		c.ICFCount = 8
	},
	// zero-pad: inter-function gaps are zero bytes, which decode as
	// add [rax],al and desynchronize linear sweeps.
	"zero-pad": func(c *Config) {
		c.ZeroPadGaps = true
		c.StartPadRate = 0.05
		c.DataIslandCount = 4
	},
	// cfi-stress: truncated ranges, overlapping bogus FDEs, Figure-6b
	// one-byte-early FDEs, absptr pointer encoding, and a heavy
	// frame-pointer (incomplete-heights) mix.
	"cfi-stress": func(c *Config) {
		c.TruncFDECount = 5
		c.OverlapFDECount = 4
		c.CFIErrorCount = 2
		c.AbsPtrFDEs = true
		c.RBPFrameRate = 0.5
	},
	// asm-heavy: openssl/glibc-like density of hand-written assembly
	// with no FDEs, plus the tail-only/indirect-only/unreachable mix
	// that concentrates there.
	"asm-heavy": func(c *Config) {
		c.AsmRate = 0.05
		c.TailOnlyRate = 0.02
		c.IndirectOnlyRate = 0.02
		c.UnreachableAsmRate = 0.01
	},
	// xref-chain: a five-link chain of pointer-only-reachable
	// functions, each link's pointer buried past the validation walk
	// bound of the previous — convergence needs six detection rounds,
	// twice the historical silent cap of three.
	"xref-chain": func(c *Config) {
		c.XrefChainLen = 5
		c.IndirectOnlyRate = 0.02
	},
	// kitchen-sink: everything at once.
	"kitchen-sink": func(c *Config) {
		c.PIE = true
		c.SplitText = true
		c.ICFCount = 4
		c.ZeroPadGaps = true
		c.TruncFDECount = 3
		c.OverlapFDECount = 3
		c.CFIErrorCount = 1
		c.NonContigRate = 0.15
		c.JumpTableRate = 0.25
		c.TextJumpTableRate = 0.4
		c.CaseOnlyRate = 0.03
		c.AsmRate = 0.02
		c.IndirectOnlyRate = 0.01
		c.RBPFrameRate = 0.35
	},
}

// ProfileNames lists the adversarial shape profiles in sorted order.
func ProfileNames() []string {
	out := make([]string, 0, len(adversarialProfiles))
	for name := range adversarialProfiles {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AdversarialProfile builds the named shape preset: DefaultConfig with
// the profile's mutation applied. The same name and seed always yield
// the same Config.
func AdversarialProfile(name string, seed int64) (Config, error) {
	return AdversarialProfileArch(name, seed, "")
}

// AdversarialProfileArch is AdversarialProfile retargeted at an ISA
// ("" or "x64" for x86-64, "a64" for aarch64). Non-default ISAs are
// suffixed into the config name so violation reports identify the
// backend.
func AdversarialProfileArch(name string, seed int64, arch string) (Config, error) {
	mutate, ok := adversarialProfiles[name]
	if !ok {
		return Config{}, fmt.Errorf("synth: unknown profile %q (known: %v)", name, ProfileNames())
	}
	cfgName := "adv-" + name
	if arch != "" && arch != "x64" {
		cfgName += "-" + arch
	}
	cfg := DefaultConfig(cfgName, seed, O2, GCC, LangC)
	cfg.NumFuncs = 72
	cfg.Arch = arch
	mutate(&cfg)
	return cfg, nil
}

// AdversarialCorpus returns one Config per profile, seeded
// deterministically from seed.
func AdversarialCorpus(seed int64) []Config {
	return AdversarialCorpusArch(seed, "")
}

// AdversarialCorpusArch is AdversarialCorpus for the given ISA.
func AdversarialCorpusArch(seed int64, arch string) []Config {
	names := ProfileNames()
	out := make([]Config, 0, len(names))
	for k, name := range names {
		cfg, _ := AdversarialProfileArch(name, seed+int64(k), arch)
		out = append(out, cfg)
	}
	return out
}
