package synth

import (
	"bytes"
	"crypto/sha256"
	"debug/elf"
	"encoding/hex"
	"fmt"
	"testing"

	"fetch/internal/ehframe"
	"fetch/internal/elfx"
)

func TestAdversarialProfilesGenerate(t *testing.T) {
	names := ProfileNames()
	if len(names) < 6 {
		t.Fatalf("only %d adversarial profiles, want >= 6", len(names))
	}
	for k, name := range names {
		t.Run(name, func(t *testing.T) {
			cfg, err := AdversarialProfile(name, 500+int64(k))
			if err != nil {
				t.Fatal(err)
			}
			im, truth := genTest(t, cfg)
			if len(truth.Funcs) == 0 {
				t.Fatal("no true functions")
			}
			// Every profile must still produce a loadable ELF whose
			// .eh_frame decodes.
			raw, err := elfx.WriteELF(im)
			if err != nil {
				t.Fatalf("WriteELF: %v", err)
			}
			got, err := elfx.LoadELF(raw)
			if err != nil {
				t.Fatalf("LoadELF: %v", err)
			}
			eh, ok := got.Section(".eh_frame")
			if !ok {
				t.Fatal("no .eh_frame after round trip")
			}
			if _, err := ehframe.Decode(eh.Data, eh.Addr); err != nil {
				t.Fatalf("eh_frame decode: %v", err)
			}
		})
	}
	if _, err := AdversarialProfile("no-such-profile", 1); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestAdversarialPIE(t *testing.T) {
	cfg, err := AdversarialProfile("pie", 42)
	if err != nil {
		t.Fatal(err)
	}
	im, truth := genTest(t, cfg)
	if !im.PIE {
		t.Fatal("image not marked PIE")
	}
	text, _ := im.Section(".text")
	if text.Addr != pieTextBase {
		t.Errorf(".text at %#x, want the PIE base %#x", text.Addr, uint64(pieTextBase))
	}
	raw, err := elfx.WriteELF(im)
	if err != nil {
		t.Fatal(err)
	}
	f, err := elf.NewFile(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("elf parse: %v", err)
	}
	if f.Type != elf.ET_DYN {
		t.Errorf("ELF type %v, want ET_DYN", f.Type)
	}
	got, err := elfx.LoadELF(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !got.PIE {
		t.Error("PIE flag lost in round trip")
	}
	if !truth.IsStart(got.Entry) {
		t.Error("entry is not a true start after round trip")
	}
}

func TestAdversarialSplitText(t *testing.T) {
	cfg, err := AdversarialProfile("split-text", 43)
	if err != nil {
		t.Fatal(err)
	}
	im, truth := genTest(t, cfg)
	unlikely, ok := im.Section(".text.unlikely")
	if !ok {
		t.Fatal("no .text.unlikely section")
	}
	if unlikely.Flags&elfx.FlagExec == 0 {
		t.Error(".text.unlikely not executable")
	}
	if len(truth.Parts) == 0 {
		t.Fatal("no non-contiguous parts generated")
	}
	// Every cold part must live in the unlikely section while its
	// parent stays in .text.
	text, _ := im.Section(".text")
	for _, p := range truth.Parts {
		if !unlikely.Contains(p.Addr) {
			t.Errorf("part %s at %#x not in .text.unlikely", p.Name, p.Addr)
		}
		if !text.Contains(p.Parent) {
			t.Errorf("parent of %s at %#x not in .text", p.Name, p.Parent)
		}
	}
	// The disassembler-facing section list must report both.
	if n := len(im.ExecSections()); n != 2 {
		t.Errorf("%d exec sections, want 2", n)
	}
}

func TestAdversarialICF(t *testing.T) {
	cfg, err := AdversarialProfile("icf", 44)
	if err != nil {
		t.Fatal(err)
	}
	im, truth := genTest(t, cfg)
	// Collect bodies of all true functions; the ICF clones must be
	// byte-identical at distinct addresses, each with its own FDE.
	bodies := map[string][]uint64{}
	for _, fn := range truth.Funcs {
		b, err := im.Bytes(fn.Addr, int(fn.Size))
		if err != nil {
			t.Fatalf("read %s: %v", fn.Name, err)
		}
		bodies[string(b)] = append(bodies[string(b)], fn.Addr)
	}
	var dupAddrs []uint64
	for _, addrs := range bodies {
		if len(addrs) >= cfg.ICFCount {
			dupAddrs = addrs
		}
	}
	if len(dupAddrs) < cfg.ICFCount {
		t.Fatalf("no body shared by >= %d functions", cfg.ICFCount)
	}
	eh, _ := im.Section(".eh_frame")
	sec, err := ehframe.Decode(eh.Data, eh.Addr)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range dupAddrs {
		if _, ok := sec.FDEStartingAt(a); !ok {
			t.Errorf("ICF clone at %#x has no FDE", a)
		}
	}
}

func TestAdversarialZeroPadGaps(t *testing.T) {
	cfg, err := AdversarialProfile("zero-pad", 45)
	if err != nil {
		t.Fatal(err)
	}
	im, truth := genTest(t, cfg)
	text, _ := im.Section(".text")
	// No 0x90/0xCC padding anywhere outside function bodies: count the
	// classic pad bytes in inter-function gaps.
	inBody := make([]bool, len(text.Data))
	mark := func(addr, size uint64) {
		for a := addr; a < addr+size; a++ {
			if text.Contains(a) {
				inBody[a-text.Addr] = true
			}
		}
	}
	for _, fn := range truth.Funcs {
		mark(fn.Addr, fn.Size)
	}
	for _, p := range truth.Parts {
		mark(p.Addr, p.Size)
	}
	gapZeros, gapOther := 0, 0
	for i, b := range text.Data {
		if inBody[i] {
			continue
		}
		if b == 0x00 {
			gapZeros++
		} else if b == 0x90 || b == 0xCC {
			gapOther++
		}
	}
	if gapZeros == 0 {
		t.Fatal("no zero padding found in gaps")
	}
	// Islands and in-text tables legitimately hold arbitrary bytes, and
	// CFI-error entries own a skew byte; but nop/int3 padding should be
	// gone entirely.
	if gapOther > cfg.DataIslandCount*48+cfg.CodeIslandCount*64 {
		t.Errorf("%d nop/int3 bytes survive in gaps (zeros: %d)", gapOther, gapZeros)
	}
}

func TestAdversarialCFIStress(t *testing.T) {
	cfg, err := AdversarialProfile("cfi-stress", 46)
	if err != nil {
		t.Fatal(err)
	}
	im, truth := genTest(t, cfg)
	eh, _ := im.Section(".eh_frame")
	sec, err := ehframe.Decode(eh.Data, eh.Addr)
	if err != nil {
		t.Fatalf("absptr eh_frame decode: %v", err)
	}
	// Truncated FDEs: PC Begin exact, range strictly shorter than the
	// function body.
	trunc := 0
	for _, fn := range truth.Funcs {
		fde, ok := sec.FDEStartingAt(fn.Addr)
		if !ok {
			continue
		}
		if fde.PCRange < fn.Size {
			trunc++
		}
	}
	if trunc < cfg.TruncFDECount {
		t.Errorf("%d truncated FDEs, want >= %d", trunc, cfg.TruncFDECount)
	}
	// Overlap FDEs: recorded in truth, each inside a host function and
	// covered by the host's own FDE range, never a true start.
	if len(truth.OverlapFDEAddrs) != cfg.OverlapFDECount {
		t.Fatalf("%d overlap FDEs, want %d", len(truth.OverlapFDEAddrs), cfg.OverlapFDECount)
	}
	for _, a := range truth.OverlapFDEAddrs {
		if truth.IsStart(a) {
			t.Errorf("overlap FDE %#x is a true start", a)
		}
		if _, ok := sec.FDEStartingAt(a); !ok {
			t.Errorf("overlap FDE %#x missing from .eh_frame", a)
			continue
		}
		covered := 0
		for _, f := range sec.FDEs {
			if f.Covers(a) && f.PCBegin != a {
				covered++
			}
		}
		if covered == 0 {
			t.Errorf("overlap FDE %#x not covered by any host FDE", a)
		}
	}
	if len(truth.CFIErrorAddrs) != cfg.CFIErrorCount {
		t.Errorf("%d CFI errors, want %d", len(truth.CFIErrorAddrs), cfg.CFIErrorCount)
	}
}

// TestAdversarialCountsOverBudgetRejected pins the no-silent-shortfall
// contract: asking for more truncated/overlap FDEs than eligible hosts
// exist is an error, not a quietly weaker shape.
func TestAdversarialCountsOverBudgetRejected(t *testing.T) {
	cfg := defaultTestConfig(47)
	cfg.NumFuncs = 12
	cfg.OverlapFDECount = 50
	if _, _, err := Generate(cfg); err == nil {
		t.Error("over-budget OverlapFDECount accepted")
	}
}

// TestAdversarialKnobsOffIsByteIdentical pins the v2 contract: with
// every adversarial knob at its zero value the generator produces the
// exact bytes of the v1 layout path (same rng stream, same sections).
// The golden hash below was recorded from that path; any change to it
// means every benign corpus binary changed — if the layout change is
// intentional, re-record the constant and say so in the PR.
func TestAdversarialKnobsOffIsByteIdentical(t *testing.T) {
	const golden = "440cade86c6d635789406676b1a1462d607efcb01c885be43f20434e76da1964"
	im, _ := genTest(t, defaultTestConfig(11))
	if _, ok := im.Section(".text.unlikely"); ok {
		t.Error("benign config grew a .text.unlikely section")
	}
	if im.PIE {
		t.Error("benign config marked PIE")
	}
	text, _ := im.Section(".text")
	if text.Addr != textBase {
		t.Errorf(".text at %#x, want %#x", text.Addr, uint64(textBase))
	}
	h := sha256.New()
	for _, s := range im.Sections {
		fmt.Fprintf(h, "%s@%#x:%d\n", s.Name, s.Addr, len(s.Data))
		h.Write(s.Data)
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != golden {
		t.Errorf("knobs-off layout hash changed:\n  got  %s\n  want %s", got, golden)
	}
}
