// Package synth is a compiler-like generator of synthetic System-V x64
// binaries with exact ground truth. It substitutes for the paper's
// corpus of 1,395 real binaries: every phenomenon the paper measures —
// FDE-per-part non-contiguous functions, hand-written assembly without
// CFI directives, tail calls, jump tables, non-returning calls,
// alignment padding, data-section function pointers, hand-written CFI
// errors — is injected structurally at configurable rates, so the
// analyses exercise the same code paths on genuine x86-64 machine code
// and a genuine .eh_frame section.
package synth

import "fmt"

// Opt is a compiler optimization level. The paper evaluates O2, O3,
// Os and Ofast (O0/O1 omitted as "not widely used in practice").
type Opt uint8

// Optimization levels.
const (
	O2 Opt = iota + 1
	O3
	Os
	Ofast
)

// String returns the conventional flag spelling.
func (o Opt) String() string {
	switch o {
	case O2:
		return "O2"
	case O3:
		return "O3"
	case Os:
		return "Os"
	case Ofast:
		return "Ofast"
	}
	return fmt.Sprintf("O?(%d)", uint8(o))
}

// AllOpts lists the evaluated optimization levels in paper order.
var AllOpts = []Opt{O2, O3, Os, Ofast}

// Compiler identifies the producing toolchain.
type Compiler uint8

// Compilers used for the self-built dataset.
const (
	GCC Compiler = iota + 1
	Clang
)

// String returns the compiler name.
func (c Compiler) String() string {
	if c == GCC {
		return "gcc"
	}
	return "clang"
}

// Lang is the source language of a synthesized program.
type Lang uint8

// Source languages.
const (
	LangC Lang = iota + 1
	LangCPP
)

// String returns "c" or "c++".
func (l Lang) String() string {
	if l == LangC {
		return "c"
	}
	return "c++"
}

// Config fully determines one synthesized binary (given its Seed the
// generation is deterministic).
type Config struct {
	Name     string
	Seed     int64
	NumFuncs int
	Opt      Opt
	Compiler Compiler
	Lang     Lang

	// Arch selects the target ISA: "" or "x64" emits x86-64 (the
	// default; existing corpora are byte-identical with the field
	// absent), "a64" emits aarch64. Every structural phenomenon above
	// is produced for either ISA in its native idiom — stp/ldp frame
	// records, adrp+add table bases, BTI landing pads — against the
	// matching .eh_frame CIE (code align 4, CFA = sp+0 at entry).
	Arch string

	// Rates are fractions of functions exhibiting each phenomenon.

	// NonContigRate: functions split into a hot part and a distant
	// cold part, each with its own FDE and symbol (§V-A's dominant
	// false-positive source).
	NonContigRate float64
	// RBPFrameRate: functions using a frame-pointer CFA. Their CFI
	// carries no rsp-relative heights, so Algorithm 1 must skip them;
	// a non-contiguous split in such a function leaves a residual
	// false positive (§V-C's 2,656).
	RBPFrameRate float64
	// AsmRate: hand-written assembly functions without FDEs (§IV-B's
	// dominant coverage-gap source).
	AsmRate float64
	// TailCallRate: functions ending in a direct tail call.
	TailCallRate float64
	// TailOnlyRate: fraction of functions reachable *only* via tail
	// calls (the harmless-miss class of §IV-E / §V-C).
	TailOnlyRate float64
	// IndirectOnlyRate: functions reachable only through function
	// pointers (found by §IV-E xref detection).
	IndirectOnlyRate float64
	// UnreachableAsmRate: assembly functions referenced nowhere.
	UnreachableAsmRate float64
	// JumpTableRate: functions containing a bounded indirect jump
	// through an absolute-address table in .rodata.
	JumpTableRate float64
	// CaseOnlyRate: functions whose only call site sits inside a
	// jump-table case block — invisible to analyses that cannot
	// resolve the table.
	CaseOnlyRate float64
	// NonRetCallRate: functions containing a call to a non-returning
	// function (exit-like, or error-like with a non-zero first arg).
	NonRetCallRate float64
	// EarlyRetRate: functions with a branch over an early ret — the
	// shape that breaks naive one-ret extent computations and feeds
	// the unsafe tail-call heuristics false positives.
	EarlyRetRate float64
	// StartPadRate: functions whose FDE range begins with alignment
	// NOPs (the ANGR alignment-function false-positive trigger).
	StartPadRate float64
	// DataIslandCount: byte blobs placed in .text that resemble
	// prologues (feeds signature matchers and linear scans).
	DataIslandCount int
	// CodeIslandCount: data blobs in .text that decode as complete,
	// convention-respecting code (e.g. cold literal copies) — the bait
	// that defeats even validating pattern matchers.
	CodeIslandCount int
	// TextJumpTableRate: fraction of jump tables placed inside .text
	// rather than .rodata (the inline data that desynchronizes linear
	// sweeps).
	TextJumpTableRate float64
	// CFIErrorCount: hand-written FDEs whose PC Begin is one byte
	// before the true entry (paper Figure 6b).
	CFIErrorCount int
	// ClangTerminate: emit a __clang_call_terminate without FDE
	// (Clang C++ binaries only).
	ClangTerminate bool
	// PICTableRate: fraction of .rodata jump tables using the
	// position-independent (table-relative int32) idiom.
	PICTableRate float64

	// Adversarial-shape knobs (generator v2). All default to off: the
	// benign corpus above is byte-identical with and without them.

	// PIE emits an ET_DYN position-independent image mapped at a low
	// base (0x1000) instead of the fixed ET_EXEC base.
	PIE bool
	// SplitText places cold parts (and the in-text jump tables that
	// follow them) in a second executable section, .text.unlikely,
	// one page past .text — the hot/cold section split -freorder-blocks-
	// and-partition produces.
	SplitText bool
	// ICFCount: byte-identical duplicate leaf bodies at distinct
	// addresses, each with its own FDE and ground-truth entry — the
	// shape identical-code-folding-aware tools wrongly deduplicate.
	ICFCount int
	// ZeroPadGaps: inter-function padding bytes are 0x00 instead of
	// NOP/int3 — zeros decode as add [rax],al and desynchronize linear
	// sweeps.
	ZeroPadGaps bool
	// TruncFDECount: functions whose FDE PCRange covers only the first
	// half of the body (truncated CFI coverage); PC Begin stays exact.
	TruncFDECount int
	// OverlapFDECount: extra bogus FDEs whose PC Begin sits mid-body of
	// a host function, overlapping the host's own FDE range — the
	// hand-written-CFI overlap case.
	OverlapFDECount int
	// AbsPtrFDEs: CIEs use the DW_EH_PE_absptr pointer encoding instead
	// of the GCC/Clang default pcrel|sdata4.
	AbsPtrFDEs bool
	// XrefChainLen: a chain of FDE-less functions each reachable only
	// through a function pointer materialized deep inside the previous
	// link's body — past the candidate-validation walk bound, so each
	// link surfaces only after the previous one's committed extension.
	// Detecting the whole chain therefore needs one pointer-detection
	// round per link: the shape that proves why the xref fixed point
	// must iterate to convergence (the historical 3-round cap silently
	// dropped every link past the third).
	XrefChainLen int

	// Version-pair knobs: recompile-style perturbation applied to the
	// assembled image after ground truth is recorded, modeling the next
	// build of the same program for delta re-analysis testing. Layout,
	// .eh_frame, and symbols are untouched; only bytes inside function
	// bodies change.

	// PerturbK rewrites filler immediates inside K true function bodies
	// in place (size-preserving, analysis-equivalent): the "same
	// source, new embedded constants" recompilation shape. Zero
	// disables perturbation — the default corpus is byte-identical with
	// the knob absent.
	PerturbK int
	// PerturbSeed decouples the perturbation choices from Seed, so one
	// base binary (PerturbK = 0) admits many perturbed versions.
	PerturbSeed int64
	// PerturbRetarget redirects one direct call per perturbed function
	// to a different call-reachable function instead of touching
	// immediates — an in-place, layout-preserving change that DOES
	// alter analysis facts, so a sound delta re-analysis must detect it
	// and fall back to the cold pipeline. Ground-truth starts stay
	// exact; reachability classes are not updated.
	PerturbRetarget bool
}

// isA64 reports whether the config targets aarch64.
func (c *Config) isA64() bool { return c.Arch == "a64" }

// Validate checks rate sanity.
func (c *Config) Validate() error {
	if c.NumFuncs < 8 {
		return fmt.Errorf("synth: NumFuncs %d too small (need ≥ 8)", c.NumFuncs)
	}
	switch c.Arch {
	case "", "x64", "a64":
	default:
		return fmt.Errorf("synth: unknown arch %q", c.Arch)
	}
	for _, r := range []float64{c.NonContigRate, c.RBPFrameRate, c.AsmRate,
		c.TailCallRate, c.TailOnlyRate, c.IndirectOnlyRate,
		c.UnreachableAsmRate, c.JumpTableRate, c.NonRetCallRate,
		c.EarlyRetRate, c.StartPadRate, c.PICTableRate} {
		if r < 0 || r > 1 {
			return fmt.Errorf("synth: rate %v out of [0,1]", r)
		}
	}
	for _, n := range []int{c.DataIslandCount, c.CodeIslandCount,
		c.CFIErrorCount, c.ICFCount, c.TruncFDECount, c.OverlapFDECount,
		c.XrefChainLen, c.PerturbK} {
		if n < 0 {
			return fmt.Errorf("synth: count %d negative", n)
		}
	}
	return nil
}

// DefaultConfig returns a config with rates calibrated against the
// paper's corpus-wide counts (see EXPERIMENTS.md for the derivation).
func DefaultConfig(name string, seed int64, opt Opt, comp Compiler, lang Lang) Config {
	c := Config{
		Name:     name,
		Seed:     seed,
		NumFuncs: 120,
		Opt:      opt,
		Compiler: comp,
		Lang:     lang,

		NonContigRate:      0.025,
		RBPFrameRate:       0.12,
		AsmRate:            0.001,
		TailCallRate:       0.10,
		TailOnlyRate:       0.002,
		IndirectOnlyRate:   0.0015,
		UnreachableAsmRate: 0.0005,
		JumpTableRate:      0.05,
		CaseOnlyRate:       0.006,
		NonRetCallRate:     0.06,
		EarlyRetRate:       0.25,
		StartPadRate:       0.004,
		DataIslandCount:    2,
		CodeIslandCount:    2,
		TextJumpTableRate:  0.3,
		PICTableRate:       0.4,
	}
	// Optimization-level adjustments mirroring the paper's trends:
	// hot/cold splitting grows with optimization aggressiveness and
	// almost disappears at Os; frame pointers are likeliest at Os.
	switch opt {
	case O3:
		c.NonContigRate = 0.032
		c.TailCallRate = 0.12
	case Ofast:
		c.NonContigRate = 0.038
		c.TailCallRate = 0.12
	case Os:
		c.NonContigRate = 0.004
		c.RBPFrameRate = 0.18
		c.JumpTableRate = 0.03
	}
	// GCC splits cold paths much more aggressively than Clang.
	if comp == Clang {
		c.NonContigRate *= 0.45
		if lang == LangCPP {
			c.ClangTerminate = true
		}
	}
	// C++ brings exception-heavy code: more cold paths.
	if lang == LangCPP {
		c.NonContigRate *= 1.3
	}
	return c
}
