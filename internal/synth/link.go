package synth

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"fetch/internal/a64"
	"fetch/internal/arch"
	"fetch/internal/ehframe"
	"fetch/internal/elfx"
	"fetch/internal/groundtruth"
	"fetch/internal/x64"
)

// Section base addresses for synthesized binaries.
const (
	textBase    = 0x401000
	pieTextBase = 0x1000
	pageSize    = 0x1000
)

// secBuf accumulates one executable section during layout.
type secBuf struct {
	name string
	base uint64
	data []byte
}

// addr returns the virtual address of the next byte to be appended
// (equivalently: the first address past the section so far).
func (sb *secBuf) addr() uint64 { return sb.base + uint64(len(sb.data)) }

// Generate synthesizes one binary: machine code, data, .eh_frame,
// symbols, and the matching ground truth.
func Generate(cfg Config) (*elfx.Image, *groundtruth.Truth, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	isA64 := cfg.isA64()
	specs, err := buildSpecs(&cfg, rng)
	if err != nil {
		return nil, nil, err
	}

	// Emit code chunks. The per-ISA generators draw from the same rng
	// in the same spec order, but never share a stream across ISAs: the
	// x64 byte stream is pinned by golden-hash tests and must not move.
	emit := emitFunc
	if isA64 {
		emit = emitFuncA64
	}
	var hot, cold []*chunk
	for _, s := range specs {
		h, c, err := emit(s, rng)
		if err != nil {
			return nil, nil, err
		}
		hot = append(hot, h)
		if c != nil {
			cold = append(cold, c)
		}
	}

	// Data islands: prologue-looking byte blobs inside .text.
	var islands []*chunk
	for k := 0; k < cfg.DataIslandCount; k++ {
		island := makeIsland(rng)
		if isA64 {
			island = makeIslandA64(rng)
		}
		islands = append(islands, &chunk{
			name:   fmt.Sprintf(".island%d", k),
			code:   island,
			isData: true,
			align:  16,
		})
	}
	// Code islands: .text data that decodes as complete, convention-
	// respecting code. They sit 16-misaligned so strictly aligned
	// matchers (GHIDRA Fsig) skip them while looser hybrids bite.
	for k := 0; k < cfg.CodeIslandCount; k++ {
		var body []byte
		if isA64 {
			body, err = makeCodeIslandA64(rng)
		} else {
			body, err = makeCodeIsland(rng)
		}
		if err != nil {
			return nil, nil, err
		}
		islands = append(islands, &chunk{
			name:   fmt.Sprintf(".cisland%d", k),
			code:   body,
			isData: true,
			align:  8,
			mis16:  true,
		})
	}
	for _, island := range islands {
		// Insert at a random position among the hot chunks (after
		// the first three runtime functions).
		pos := 3 + rng.Intn(len(hot)-3)
		hot = append(hot[:pos], append([]*chunk{island}, hot[pos:]...)...)
	}

	// --- Layout executable sections ---
	// Hot chunks go to .text; cold parts follow in the same section or,
	// with SplitText, in .text.unlikely one page past it. In-text jump
	// tables land after the cold parts, wherever those live.
	base := uint64(textBase)
	if cfg.PIE {
		base = pieTextBase
	}
	hotSec := &secBuf{name: ".text", base: base}
	fill := byte(0x90)
	if cfg.ZeroPadGaps {
		fill = 0x00
	}
	pad := func(sb *secBuf, align int) {
		if isA64 {
			// A64 gaps are whole words: nop or brk #0 filler, or the
			// all-zero udf word under ZeroPadGaps (the shape that traps
			// linear sweeps into the permanently-undefined space).
			for sb.addr()%uint64(align) != 0 {
				if cfg.ZeroPadGaps {
					sb.data = append(sb.data, 0x00, 0x00, 0x00, 0x00)
				} else if rng.Intn(10) < 7 {
					sb.data = append(sb.data, 0x1F, 0x20, 0x03, 0xD5) // nop
				} else {
					sb.data = append(sb.data, 0x00, 0x00, 0x20, 0xD4) // brk #0
				}
			}
			return
		}
		for sb.addr()%uint64(align) != 0 {
			if cfg.ZeroPadGaps {
				sb.data = append(sb.data, 0x00)
			} else if rng.Intn(10) < 7 {
				sb.data = append(sb.data, 0x90) // nop
			} else {
				sb.data = append(sb.data, 0xCC) // int3
			}
		}
	}
	place := func(sb *secBuf, ch *chunk) {
		align := ch.align
		if align == 0 {
			align = 16
		}
		pad(sb, align)
		if ch.mis16 && sb.addr()%16 == 0 {
			if isA64 {
				// Two deterministic filler words keep the misalignment
				// offset (8) identical across ISAs.
				if cfg.ZeroPadGaps {
					sb.data = append(sb.data, 0, 0, 0, 0, 0, 0, 0, 0)
				} else {
					sb.data = append(sb.data,
						0x1F, 0x20, 0x03, 0xD5, 0x1F, 0x20, 0x03, 0xD5)
				}
			} else {
				for k := 0; k < 8; k++ {
					sb.data = append(sb.data, fill)
				}
			}
		}
		ch.addr = sb.addr()
		ch.sec = sb
		ch.off = len(sb.data)
		sb.data = append(sb.data, ch.code...)
	}
	var textTables []*chunk
	layout := append(append([]*chunk(nil), hot...), cold...)
	coldSec := hotSec
	if cfg.SplitText {
		for _, ch := range hot {
			place(hotSec, ch)
		}
		pad(hotSec, 16)
		coldSec = &secBuf{name: ".text.unlikely", base: alignUp(hotSec.addr(), pageSize)}
		for _, ch := range cold {
			place(coldSec, ch)
		}
		pad(coldSec, 16)
	} else {
		for _, ch := range layout {
			place(hotSec, ch)
		}
		pad(hotSec, 16)
	}

	// --- Symbol resolution table ---
	symAddr := make(map[string]uint64)
	for _, ch := range layout {
		symAddr[ch.name] = ch.addr + uint64(ch.symOff)
		for name, off := range ch.exports {
			symAddr[name] = ch.addr + uint64(off)
		}
	}

	// --- .rodata: jump tables + misc constants ---
	// Jump tables: most live in .rodata; a fraction is placed inside
	// .text (the inline data that desynchronizes linear sweeps).
	type tableRef struct {
		sym   string
		off   int
		cases []string
		pic   bool
	}
	var tables []tableRef // .rodata tables, patched below
	var rodata []byte
	for _, s := range specs {
		if s.jumpTable == 0 {
			continue
		}
		var cases []string
		for k := 0; k < s.jumpTable; k++ {
			cases = append(cases, fmt.Sprintf("%s.c%d", s.name, k))
		}
		if s.picTable {
			// PIC tables always live in .rodata with int32 entries.
			for len(rodata)%4 != 0 {
				rodata = append(rodata, 0)
			}
			tables = append(tables, tableRef{sym: s.name + ".tbl", off: len(rodata), cases: cases, pic: true})
			rodata = append(rodata, make([]byte, 4*s.jumpTable)...)
			continue
		}
		if rng.Float64() < cfg.TextJumpTableRate {
			tbl := &chunk{
				name:   s.name + ".tbl",
				code:   make([]byte, 8*s.jumpTable),
				isData: true,
				align:  8,
			}
			for k, cs := range cases {
				tbl.fixups = append(tbl.fixups, x64.Fixup{
					Kind: x64.FixAbs64, Off: 8 * k, Sym: cs,
				})
			}
			place(coldSec, tbl)
			symAddr[tbl.name] = tbl.addr
			textTables = append(textTables, tbl)
			layout = append(layout, tbl)
			continue
		}
		for len(rodata)%8 != 0 {
			rodata = append(rodata, 0)
		}
		tables = append(tables, tableRef{sym: s.name + ".tbl", off: len(rodata), cases: cases})
		rodata = append(rodata, make([]byte, 8*s.jumpTable)...)
	}
	roBase := alignUp(coldSec.addr(), pageSize)
	for _, t := range tables {
		symAddr[t.sym] = roBase + uint64(t.off)
	}
	// Misc rodata: strings, integers, and a few mid-function addresses
	// that look like pointers but must be rejected by §IV-E validation.
	rodata = append(rodata, []byte("synthetic corpus \x00version 1\x00")...)
	for len(rodata)%8 != 0 {
		rodata = append(rodata, 0)
	}
	var midPtrOffs []int
	for k := 0; k < 4; k++ {
		midPtrOffs = append(midPtrOffs, len(rodata))
		rodata = append(rodata, make([]byte, 8)...)
	}
	for k := 0; k < 8; k++ {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], uint64(rng.Intn(1<<30)))
		rodata = append(rodata, tmp[:]...)
	}

	// --- .data: function-pointer slots ---
	dataBase := alignUp(roBase+uint64(len(rodata)), pageSize)
	var data []byte
	type slotRef struct {
		off int
		sym string
	}
	var slots []slotRef
	for _, s := range specs {
		if s.dataPtrSlot {
			slots = append(slots, slotRef{off: len(data), sym: s.name})
			data = append(data, make([]byte, 8)...)
		}
	}
	// Some pointer-looking noise.
	for k := 0; k < 6; k++ {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], uint64(rng.Int63n(1<<40)))
		data = append(data, tmp[:]...)
	}
	if len(data) == 0 {
		data = make([]byte, 16)
	}

	// --- Patch fixups ---
	// Patching happens only after every chunk is placed: placement
	// appends to the section buffers, so slices taken earlier would go
	// stale; ch.sec/ch.off index the final buffers instead.
	patch := func(ch *chunk) error {
		for _, f := range ch.fixups {
			target, ok := symAddr[f.Sym]
			if !ok {
				return fmt.Errorf("synth: undefined symbol %q in %s", f.Sym, ch.name)
			}
			target += uint64(f.Addend)
			at := ch.off + f.Off
			// The aarch64 kinds patch bit fields of the little-endian
			// instruction word at the fixup site; site-relative deltas
			// are measured from the instruction address itself (A64 has
			// no end-of-instruction bias).
			site := ch.addr + uint64(f.Off)
			switch f.Kind {
			case x64.FixRel32:
				rel := int64(target) - int64(ch.addr+uint64(f.End))
				binary.LittleEndian.PutUint32(ch.sec.data[at:], uint32(int32(rel)))
			case x64.FixAbs32:
				binary.LittleEndian.PutUint32(ch.sec.data[at:], uint32(target))
			case x64.FixAbs64:
				binary.LittleEndian.PutUint64(ch.sec.data[at:], target)
			case arch.FixA64Branch26, arch.FixA64Cond19:
				delta := int64(target) - int64(site)
				if delta%4 != 0 {
					return fmt.Errorf("synth: %s: misaligned branch to %q", ch.name, f.Sym)
				}
				rel := delta / 4
				w := binary.LittleEndian.Uint32(ch.sec.data[at:])
				if f.Kind == arch.FixA64Branch26 {
					if rel < -(1<<25) || rel >= 1<<25 {
						return fmt.Errorf("synth: %s: %q out of branch26 range", ch.name, f.Sym)
					}
					w |= uint32(rel) & 0x03FFFFFF
				} else {
					if rel < -(1<<18) || rel >= 1<<18 {
						return fmt.Errorf("synth: %s: %q out of cond19 range", ch.name, f.Sym)
					}
					w |= (uint32(rel) & 0x7FFFF) << 5
				}
				binary.LittleEndian.PutUint32(ch.sec.data[at:], w)
			case arch.FixA64Page21:
				pages := (int64(target)&^0xFFF - int64(site)&^0xFFF) >> 12
				if pages < -(1<<20) || pages >= 1<<20 {
					return fmt.Errorf("synth: %s: %q out of adrp range", ch.name, f.Sym)
				}
				w := binary.LittleEndian.Uint32(ch.sec.data[at:])
				w |= (uint32(pages) & 0x3) << 29
				w |= (uint32(pages>>2) & 0x7FFFF) << 5
				binary.LittleEndian.PutUint32(ch.sec.data[at:], w)
			case arch.FixA64Lo12:
				w := binary.LittleEndian.Uint32(ch.sec.data[at:])
				w |= (uint32(target) & 0xFFF) << 10
				binary.LittleEndian.PutUint32(ch.sec.data[at:], w)
			case arch.FixA64Adr21:
				delta := int64(target) - int64(site)
				if delta < -(1<<20) || delta >= 1<<20 {
					return fmt.Errorf("synth: %s: %q out of adr range", ch.name, f.Sym)
				}
				w := binary.LittleEndian.Uint32(ch.sec.data[at:])
				w |= (uint32(delta) & 0x3) << 29
				w |= (uint32(delta>>2) & 0x7FFFF) << 5
				binary.LittleEndian.PutUint32(ch.sec.data[at:], w)
			}
		}
		return nil
	}
	for _, ch := range layout {
		if err := patch(ch); err != nil {
			return nil, nil, err
		}
	}
	for _, t := range tables {
		tblAddr := symAddr[t.sym]
		for k, caseSym := range t.cases {
			addr, ok := symAddr[caseSym]
			if !ok {
				return nil, nil, fmt.Errorf("synth: undefined case label %q", caseSym)
			}
			if t.pic {
				binary.LittleEndian.PutUint32(rodata[t.off+4*k:], uint32(int32(int64(addr)-int64(tblAddr))))
			} else {
				binary.LittleEndian.PutUint64(rodata[t.off+8*k:], addr)
			}
		}
	}
	for k, off := range midPtrOffs {
		// Point into the middle of some function body.
		ch := hot[(k*7+5)%len(hot)]
		if ch.isData {
			ch = hot[0]
		}
		binary.LittleEndian.PutUint64(rodata[off:], ch.addr+uint64(len(ch.code))/2)
	}
	for _, s := range slots {
		addr, ok := symAddr[s.sym]
		if !ok {
			return nil, nil, fmt.Errorf("synth: undefined pointer target %q", s.sym)
		}
		binary.LittleEndian.PutUint64(data[s.off:], addr)
	}

	// --- .eh_frame ---
	ehBase := alignUp(dataBase+uint64(len(data)), pageSize)
	sec := &ehframe.Section{Addr: ehBase}
	// Group FDEs under a handful of CIEs, mimicking per-object CIEs.
	var cies []*ehframe.CIE
	cieFor := func(i int) *ehframe.CIE {
		want := i / 24
		for len(cies) <= want {
			c := ehframe.NewDefaultCIE()
			if isA64 {
				c = ehframe.NewDefaultCIEA64()
			}
			if cfg.AbsPtrFDEs {
				c.FDEEnc = ehframe.PEAbsptr
			}
			cies = append(cies, c)
		}
		return cies[want]
	}
	fdeIdx := 0
	var overlapAddrs []uint64
	for _, ch := range layout {
		if !ch.hasFDE || ch.isData {
			continue
		}
		pcRange := uint64(len(ch.code))
		if ch.spec != nil && ch.spec.truncFDE && !ch.isPart {
			// Truncated CFI coverage: the range stops halfway through
			// the body; PC Begin stays exact.
			if half := pcRange / 2; half > 0 {
				pcRange = half
			}
		}
		fde := &ehframe.FDE{
			CIE:     cieFor(fdeIdx),
			PCBegin: ch.addr,
			PCRange: pcRange,
			Program: convertCFI(ch.cfi),
		}
		sec.FDEs = append(sec.FDEs, fde)
		fdeIdx++
	}
	// Overlapping bogus FDEs: an extra program-less FDE starting at the
	// host's .mid offset, covering the tail the host's own FDE already
	// covers. Its PC Begin is a real instruction boundary but not a
	// true function start.
	for _, ch := range layout {
		if ch.spec == nil || !ch.spec.overlapFDE || ch.isPart || ch.isData {
			continue
		}
		mid, ok := ch.exports[ch.spec.name+".mid"]
		if !ok || mid >= len(ch.code) {
			continue
		}
		sec.FDEs = append(sec.FDEs, &ehframe.FDE{
			CIE:     cieFor(fdeIdx),
			PCBegin: ch.addr + uint64(mid),
			PCRange: uint64(len(ch.code) - mid),
		})
		fdeIdx++
		overlapAddrs = append(overlapAddrs, ch.addr+uint64(mid))
	}
	sort.Slice(sec.FDEs, func(i, j int) bool { return sec.FDEs[i].PCBegin < sec.FDEs[j].PCBegin })
	ehBytes, err := sec.Encode()
	if err != nil {
		return nil, nil, err
	}

	// --- Image assembly ---
	im := &elfx.Image{
		Name:  cfg.Name,
		Entry: symAddr["main"],
		PIE:   cfg.PIE,
	}
	if isA64 {
		im.Machine = a64.EMachine
	}
	im.Sections = append(im.Sections,
		&elfx.Section{Name: hotSec.name, Addr: hotSec.base, Data: hotSec.data, Flags: elfx.FlagAlloc | elfx.FlagExec})
	if coldSec != hotSec && len(coldSec.data) > 0 {
		im.Sections = append(im.Sections,
			&elfx.Section{Name: coldSec.name, Addr: coldSec.base, Data: coldSec.data, Flags: elfx.FlagAlloc | elfx.FlagExec})
	}
	im.Sections = append(im.Sections,
		&elfx.Section{Name: ".rodata", Addr: roBase, Data: rodata, Flags: elfx.FlagAlloc},
		&elfx.Section{Name: ".data", Addr: dataBase, Data: data, Flags: elfx.FlagAlloc | elfx.FlagWrite},
		&elfx.Section{Name: ".eh_frame", Addr: ehBase, Data: ehBytes, Flags: elfx.FlagAlloc},
	)
	for _, ch := range layout {
		if !ch.hasSym || ch.isData {
			continue
		}
		im.Symbols = append(im.Symbols, elfx.Symbol{
			Name: ch.name,
			Addr: ch.addr + uint64(ch.symOff),
			Size: uint64(len(ch.code) - ch.symOff),
			Func: true,
		})
	}

	// --- Ground truth ---
	truth := &groundtruth.Truth{}
	chunkByName := make(map[string]*chunk, len(layout))
	for _, ch := range layout {
		chunkByName[ch.name] = ch
	}
	for _, s := range specs {
		ch := chunkByName[s.name]
		gt := groundtruth.Func{
			Name:   s.name,
			Addr:   ch.addr + uint64(ch.symOff),
			Size:   uint64(len(ch.code) - ch.symOff),
			Class:  gtClass(s.class),
			Reach:  s.reach,
			HasFDE: s.hasFDE,
			NonRet: s.nonRet,
		}
		if s.tailCall != "" {
			gt.TailTargets = append(gt.TailTargets, symAddr[s.tailCall])
		}
		truth.Funcs = append(truth.Funcs, gt)
		if s.class == clsCFIErr {
			truth.CFIErrorAddrs = append(truth.CFIErrorAddrs, ch.addr)
		}
	}
	truth.OverlapFDEAddrs = overlapAddrs
	for _, ch := range layout {
		if !ch.isPart {
			continue
		}
		parent := chunkByName[ch.parent]
		truth.Parts = append(truth.Parts, groundtruth.Part{
			Name:          ch.name,
			Addr:          ch.addr,
			Size:          uint64(len(ch.code)),
			Parent:        parent.addr + uint64(parent.symOff),
			IncompleteCFI: ch.spec.frame == frameRBP,
		})
	}
	if err := perturb(im, truth, &cfg); err != nil {
		return nil, nil, err
	}
	return im, truth, nil
}

// gtClass maps generator classes onto ground-truth classes.
func gtClass(c funcClass) groundtruth.Class {
	switch c {
	case clsAsm, clsTailAsm, clsIndirAsm, clsUnreach:
		return groundtruth.ClassAsm
	case clsClangTerm:
		return groundtruth.ClassClangTerminate
	}
	return groundtruth.ClassNormal
}

// convertCFI turns offset-tagged CFI events into an FDE program with
// advance_loc instructions between state changes.
func convertCFI(events []cfiAt) []ehframe.CFI {
	var prog []ehframe.CFI
	prev := 0
	for _, e := range events {
		if e.off > prev {
			prog = append(prog, ehframe.CFI{
				Op:    ehframe.CFAAdvanceLoc,
				Delta: uint64(e.off - prev),
			})
			prev = e.off
		}
		prog = append(prog, e.in)
	}
	return prog
}

// makeIsland produces a data blob that begins like a canonical GCC
// prologue and continues with pointer-free noise — the bait for
// signature matchers and linear scans.
func makeIsland(rng *rand.Rand) []byte {
	out := []byte{0x55, 0x48, 0x89, 0xE5} // push rbp; mov rbp,rsp
	n := 16 + rng.Intn(32)
	for k := 0; k < n; k++ {
		out = append(out, byte(rng.Intn(256)))
	}
	return out
}

// makeCodeIsland produces .text data that decodes as a complete,
// convention-respecting function body — indistinguishable from code to
// any pattern matcher, yet never referenced and absent from the ground
// truth (a stale literal copy, in effect).
func makeCodeIsland(rng *rand.Rand) ([]byte, error) {
	var a x64.Asm
	a.PushReg(x64.RBP)
	a.MovRegReg(x64.RBP, x64.RSP)
	a.SubRSP(16 + int32(rng.Intn(3))*16)
	a.MovRegReg(x64.RAX, x64.RDI)
	for k := 0; k < 2+rng.Intn(3); k++ {
		a.AddRegImm(x64.RAX, int32(rng.Intn(64)+1))
	}
	a.MovRegReg(x64.RSP, x64.RBP)
	a.PopReg(x64.RBP)
	a.Ret()
	code, fixups, err := a.Finish()
	if err != nil || len(fixups) != 0 {
		return nil, fmt.Errorf("synth: code island: %v", err)
	}
	return code, nil
}

func alignUp(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }
