// Package realbin evaluates the pipeline on real, unstripped x64 ELF
// binaries by making them self-validating: the symbol information the
// binary itself ships (.symtab, Go's .gopclntab, or — partially —
// .dynsym) is the ground truth, a stripped copy of the same image is
// the input, and internal/metrics scores the detections exactly as the
// synthetic lane does. The paper builds its dataset by intercepting
// the compiler; this lane is the closest equivalent available for
// binaries we did not build, and it is where decoder assumptions meet
// encodings real toolchains actually emit.
package realbin

import (
	"debug/gosym"
	"fmt"
	"strings"

	"fetch/internal/elfx"
	"fetch/internal/groundtruth"
)

// Truth sources, strongest first. The precedence is pclntab > symtab >
// dynsym: the Go runtime's function table is authoritative for Go
// binaries (assembly helpers included), .symtab is complete for normal
// unstripped binaries, and .dynsym survives stripping but only names
// exported functions, so truth derived from it is partial.
const (
	SourcePclntab = "pclntab"
	SourceSymtab  = "symtab"
	SourceDynsym  = "dynsym"
	SourceNone    = "none"
)

// TruthInfo describes where a binary's ground truth came from.
type TruthInfo struct {
	// Source is one of the Source* constants.
	Source string `json:"source"`
	// Partial marks truth that understates the real function set
	// (dynsym-only). False-positive counts against partial truth are
	// upper bounds: a "false" positive may be a real unexported
	// function, so precision floors must be read accordingly.
	Partial bool `json:"partial,omitempty"`
}

// partBase splits a non-contiguous-part symbol name ("f.cold",
// "f.cold.3", "f.part.2") into its parent function name. Isolated
// clones like "f.isra.0" or "f.constprop.1" are NOT parts — they are
// real functions with their own entry — so only the GCC/Clang cold /
// part spellings count.
func partBase(name string) (string, bool) {
	for _, marker := range []string{".cold", ".part."} {
		if i := strings.Index(name, marker); i > 0 {
			rest := name[i+len(marker):]
			if marker == ".cold" && rest != "" && !strings.HasPrefix(rest, ".") {
				continue // e.g. ".coldfn" — not the marker
			}
			return name[:i], true
		}
	}
	return "", false
}

// DeriveTruth extracts function-start ground truth from an unstripped
// image, using the strongest source present. A binary with no usable
// source returns Source "none" and a nil truth — callers treat that as
// "skip", not as an error, since stripped system binaries are expected
// in scan mode.
func DeriveTruth(im *elfx.Image) (*groundtruth.Truth, TruthInfo) {
	if t := pclntabTruth(im); t != nil && len(t.Funcs) > 0 {
		return t, TruthInfo{Source: SourcePclntab}
	}
	if t := symbolTruth(im, false); t != nil && len(t.Funcs) > 0 {
		return t, TruthInfo{Source: SourceSymtab}
	}
	if t := symbolTruth(im, true); t != nil && len(t.Funcs) > 0 {
		return t, TruthInfo{Source: SourceDynsym, Partial: true}
	}
	return nil, TruthInfo{Source: SourceNone}
}

// pclntabTruth derives truth from a Go binary's runtime function
// table. It is authoritative when present: every function the runtime
// can unwind is listed, including assembly routines with no DWARF.
// debug/gosym parses attacker-ish inputs in scan mode, so a panic
// inside it degrades to "no pclntab truth" instead of killing the run.
func pclntabTruth(im *elfx.Image) (t *groundtruth.Truth) {
	defer func() {
		if recover() != nil {
			t = nil
		}
	}()
	pcln, ok := im.Section(".gopclntab")
	if !ok {
		return nil
	}
	text, ok := im.Section(".text")
	if !ok {
		return nil
	}
	tab, err := gosym.NewTable(nil, gosym.NewLineTable(pcln.Bytes(), text.Addr))
	if err != nil {
		return nil
	}
	t = &groundtruth.Truth{}
	seen := make(map[uint64]bool, len(tab.Funcs))
	for i := range tab.Funcs {
		fn := &tab.Funcs[i]
		if seen[fn.Entry] || !im.IsExec(fn.Entry) {
			continue
		}
		seen[fn.Entry] = true
		t.Funcs = append(t.Funcs, groundtruth.Func{
			Name:  fn.Name,
			Addr:  fn.Entry,
			Size:  fn.End - fn.Entry,
			Class: groundtruth.ClassNormal,
		})
	}
	return t
}

// symbolTruth derives truth from the symbol table: function symbols in
// executable sections, with cold/part symbols recorded as
// non-contiguous Parts (detecting one is a false positive, same as the
// synthetic lane). dyn selects the .dynsym-sourced subset instead of
// .symtab.
func symbolTruth(im *elfx.Image, dyn bool) *groundtruth.Truth {
	t := &groundtruth.Truth{}
	byName := make(map[string]uint64)
	seen := make(map[uint64]bool)
	type part struct {
		name string
		addr uint64
		size uint64
		base string
	}
	var parts []part
	for _, s := range im.Symbols {
		if s.Dyn != dyn || !s.Func || !im.IsExec(s.Addr) {
			continue
		}
		if base, isPart := partBase(s.Name); isPart {
			parts = append(parts, part{name: s.Name, addr: s.Addr, size: s.Size, base: base})
			continue
		}
		if seen[s.Addr] {
			continue // aliases: first name wins
		}
		seen[s.Addr] = true
		byName[s.Name] = s.Addr
		t.Funcs = append(t.Funcs, groundtruth.Func{
			Name:  s.Name,
			Addr:  s.Addr,
			Size:  s.Size,
			Class: groundtruth.ClassNormal,
		})
	}
	partSeen := make(map[uint64]bool)
	for _, p := range parts {
		// A part whose address doubles as a true start (ICF folding)
		// stays a start; and parts dedup among themselves too.
		if seen[p.addr] || partSeen[p.addr] {
			continue
		}
		partSeen[p.addr] = true
		t.Parts = append(t.Parts, groundtruth.Part{
			Name:   p.name,
			Addr:   p.addr,
			Size:   p.size,
			Parent: byName[p.base],
		})
	}
	return t
}

// describeTruth renders a one-line provenance summary for reports.
func describeTruth(info TruthInfo, t *groundtruth.Truth) string {
	if t == nil {
		return "none"
	}
	s := fmt.Sprintf("%s (%d funcs, %d parts)", info.Source, len(t.Funcs), len(t.Parts))
	if info.Partial {
		s += " [partial]"
	}
	return s
}
