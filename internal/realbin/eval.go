package realbin

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"fetch/internal/core"
	"fetch/internal/ehframe"
	"fetch/internal/elfx"
	"fetch/internal/metrics"
	"fetch/internal/pool"
)

// StrategyNames labels the paper's cumulative strategy ladder in the
// order core.Lattice returns it.
var StrategyNames = []string{"FDE", "FDE+Rec", "FDE+Rec+Xref", "FETCH"}

// StrategyScore is one strategy's result on one binary.
type StrategyScore struct {
	Strategy  string  `json:"strategy"`
	Funcs     int     `json:"funcs"`
	TP        int     `json:"tp"`
	FP        int     `json:"fp"`
	FN        int     `json:"fn"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	WallMS    float64 `json:"wall_ms"`
}

// f1 combines precision and recall; zero when both are zero.
func f1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// BinaryReport is the evaluation of one binary. Exactly one of the
// three shapes holds: Scores set (evaluated), Skip set (not evaluable,
// by design), or Err set (the binary should have worked and did not —
// the bug-shaking signal this lane exists for).
type BinaryReport struct {
	Name      string `json:"name"`
	Path      string `json:"path,omitempty"`
	SizeBytes int    `json:"size_bytes"`

	Truth      TruthInfo `json:"truth"`
	TruthFuncs int       `json:"truth_funcs,omitempty"`
	TruthParts int       `json:"truth_parts,omitempty"`

	// SyntheticEHFrame marks binaries analyzed with an injected empty
	// .eh_frame (Go internal linking emits none); detection then rests
	// entirely on the recursive/xref stages.
	SyntheticEHFrame bool `json:"synthetic_eh_frame,omitempty"`
	// EHStats carries the .eh_frame decoder's tolerance counters:
	// nonzero DWARF64 or Skipped values on a binary that still scores
	// well is the graceful-degradation path working as designed.
	EHStats ehframe.DecodeStats `json:"eh_stats"`

	Scores []StrategyScore `json:"scores,omitempty"`
	Skip   string          `json:"skip,omitempty"`
	Err    string          `json:"err,omitempty"`
}

// Score returns the named strategy's score, if present.
func (b *BinaryReport) Score(strategy string) (StrategyScore, bool) {
	for _, s := range b.Scores {
		if s.Strategy == strategy {
			return s, true
		}
	}
	return StrategyScore{}, false
}

// Evaluated reports whether the binary produced scores.
func (b *BinaryReport) Evaluated() bool { return len(b.Scores) > 0 }

// syntheticEHFrameAddr picks an address for an injected .eh_frame:
// page-aligned past everything mapped, so it can never shadow real
// bytes.
func syntheticEHFrameAddr(im *elfx.Image) uint64 {
	var top uint64
	for _, s := range im.Sections {
		if s.End() > top {
			top = s.End()
		}
	}
	return (top + 0xFFF) &^ 0xFFF
}

// EvalImage evaluates one loaded, unstripped image: derive truth,
// strip a copy, run the strategy ladder on the stripped image, score
// each run. It never panics the caller's run; failures land in the
// report's Err field.
func EvalImage(name string, im *elfx.Image) *BinaryReport {
	rep := &BinaryReport{Name: name}
	truth, info := DeriveTruth(im)
	rep.Truth = info
	if truth == nil {
		rep.Skip = "no ground truth (already stripped?)"
		return rep
	}
	rep.TruthFuncs = len(truth.Funcs)
	rep.TruthParts = len(truth.Parts)

	stripped := im.Strip()
	// Never let appends leak into the unstripped image's backing array.
	stripped.Sections = append([]*elfx.Section(nil), stripped.Sections...)
	if _, ok := stripped.Section(".eh_frame"); !ok {
		// Go internal linking ships no .eh_frame; an empty table (just
		// the terminator) lets the FDE pass find nothing and the later
		// stages work from the entry point and pointers.
		rep.SyntheticEHFrame = true
		stripped.Sections = append(stripped.Sections, &elfx.Section{
			Name:  ".eh_frame",
			Addr:  syntheticEHFrameAddr(stripped),
			Data:  []byte{0, 0, 0, 0},
			Flags: elfx.FlagAlloc,
		})
	}

	for i, strat := range core.Lattice() {
		start := time.Now()
		res, err := core.AnalyzeConfig(stripped, core.Config{Strategy: strat})
		if err != nil {
			rep.Err = fmt.Sprintf("%s: %v", StrategyNames[i], err)
			rep.Scores = nil
			return rep
		}
		e := metrics.Evaluate(res.Funcs, truth)
		p, r := e.Precision(), e.Recall()
		rep.Scores = append(rep.Scores, StrategyScore{
			Strategy:  StrategyNames[i],
			Funcs:     len(res.Funcs),
			TP:        e.TP,
			FP:        e.FP,
			FN:        e.FN,
			Precision: p,
			Recall:    r,
			F1:        f1(p, r),
			WallMS:    float64(time.Since(start).Microseconds()) / 1000,
		})
		if res.Sec != nil {
			rep.EHStats = res.Sec.Stats
		}
	}
	return rep
}

// EvalData evaluates one binary from its raw bytes.
func EvalData(name string, data []byte) *BinaryReport {
	rep := &BinaryReport{Name: name, SizeBytes: len(data)}
	im, err := elfx.LoadELF(data)
	if err != nil {
		rep.Skip = fmt.Sprintf("not loadable: %v", err)
		return rep
	}
	out := EvalImage(name, im)
	out.SizeBytes = len(data)
	return out
}

// EvalFile evaluates one binary from disk through the file-backed
// image path: section bodies stay on disk (zero-copy mmap windows, or
// pread copies where mapping is unavailable) instead of the whole file
// being read onto the heap, so corpus scans over binaries far larger
// than memory budgets work. maxBytes > 0 caps the input size; larger
// files are skipped, not failed.
func EvalFile(path string, maxBytes int64) *BinaryReport {
	fi, err := os.Stat(path)
	if err != nil {
		return &BinaryReport{Name: path, Path: path, Err: err.Error()}
	}
	if maxBytes > 0 && fi.Size() > maxBytes {
		return &BinaryReport{Name: path, Path: path, SizeBytes: int(fi.Size()),
			Skip: fmt.Sprintf("larger than %d bytes", maxBytes)}
	}
	im, err := elfx.LoadELFFile(path)
	if err != nil {
		return &BinaryReport{Name: path, Path: path, SizeBytes: int(fi.Size()),
			Skip: fmt.Sprintf("not loadable: %v", err)}
	}
	defer im.Close()
	rep := EvalImage(path, im)
	rep.Path = path
	rep.SizeBytes = int(fi.Size())
	return rep
}

// AggregateScore is one strategy's micro-aggregate (summed confusion
// counts) over every evaluated binary of a corpus.
type AggregateScore struct {
	Strategy  string  `json:"strategy"`
	TP        int     `json:"tp"`
	FP        int     `json:"fp"`
	FN        int     `json:"fn"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

// CorpusReport aggregates a run over many binaries.
type CorpusReport struct {
	Binaries  []*BinaryReport  `json:"binaries"`
	Evaluated int              `json:"evaluated"`
	Skipped   int              `json:"skipped"`
	Failed    int              `json:"failed"`
	Aggregate []AggregateScore `json:"aggregate,omitempty"`
}

// Errs returns the reports that failed hard.
func (c *CorpusReport) Errs() []*BinaryReport {
	var out []*BinaryReport
	for _, b := range c.Binaries {
		if b.Err != "" {
			out = append(out, b)
		}
	}
	return out
}

// aggregate recomputes the corpus counters from the per-binary rows.
func (c *CorpusReport) aggregate() {
	c.Evaluated, c.Skipped, c.Failed = 0, 0, 0
	sums := map[string]*AggregateScore{}
	for _, b := range c.Binaries {
		switch {
		case b.Err != "":
			c.Failed++
		case b.Evaluated():
			c.Evaluated++
			for _, s := range b.Scores {
				agg := sums[s.Strategy]
				if agg == nil {
					agg = &AggregateScore{Strategy: s.Strategy}
					sums[s.Strategy] = agg
				}
				agg.TP += s.TP
				agg.FP += s.FP
				agg.FN += s.FN
			}
		default:
			c.Skipped++
		}
	}
	c.Aggregate = c.Aggregate[:0]
	for _, name := range StrategyNames {
		agg, ok := sums[name]
		if !ok {
			continue
		}
		e := metrics.Eval{TP: agg.TP, FP: agg.FP, FN: agg.FN}
		agg.Precision, agg.Recall = e.Precision(), e.Recall()
		agg.F1 = f1(agg.Precision, agg.Recall)
		c.Aggregate = append(c.Aggregate, *agg)
	}
}

// EvalFiles evaluates many binaries concurrently (jobs ≤ 0 means one
// per CPU) and aggregates. Per-binary failures are recorded, never
// fatal; results keep input order.
func EvalFiles(ctx context.Context, paths []string, jobs int, maxBytes int64) *CorpusReport {
	results := pool.Map(ctx, pool.Jobs(jobs), paths, func(ctx context.Context, i int, p string) (*BinaryReport, error) {
		return EvalFile(p, maxBytes), nil
	})
	rep := &CorpusReport{}
	for i, r := range results {
		if r.Err != nil { // only possible via ctx cancellation
			rep.Binaries = append(rep.Binaries, &BinaryReport{
				Name: paths[i], Path: paths[i], Err: r.Err.Error()})
			continue
		}
		rep.Binaries = append(rep.Binaries, r.Value)
	}
	rep.aggregate()
	return rep
}

// SortBinaries orders the report rows by name for stable output.
func (c *CorpusReport) SortBinaries() {
	sort.Slice(c.Binaries, func(i, j int) bool { return c.Binaries[i].Name < c.Binaries[j].Name })
}
