package realbin

import (
	"encoding/json"
	"fmt"
	"os"
)

// Floor is the minimum acceptable score of one binary under one
// strategy. Floors, not exact pins: real-toolchain output varies
// across compiler versions, so the golden file encodes "never worse
// than" thresholds rather than byte-exact expectations.
type Floor struct {
	// Strategy to check; empty means "FETCH".
	Strategy     string  `json:"strategy,omitempty"`
	MinPrecision float64 `json:"min_precision"`
	MinRecall    float64 `json:"min_recall"`
}

// Golden maps binary names (as reported, e.g. corpus file basenames)
// to their score floors.
type Golden map[string][]Floor

// LoadGolden reads a golden floor file.
func LoadGolden(path string) (Golden, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g Golden
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("realbin: golden %s: %w", path, err)
	}
	return g, nil
}

// Check compares a corpus run against the floors. Every violation is
// one string: a golden-listed binary that is missing, failed, was
// skipped, or scored below a floor. An empty result means the run
// holds the line.
func (g Golden) Check(rep *CorpusReport) []string {
	byName := make(map[string]*BinaryReport, len(rep.Binaries))
	for _, b := range rep.Binaries {
		byName[b.Name] = b
	}
	var bad []string
	for name, floors := range g {
		b, ok := byName[name]
		switch {
		case !ok:
			bad = append(bad, fmt.Sprintf("%s: not in run", name))
			continue
		case b.Err != "":
			bad = append(bad, fmt.Sprintf("%s: failed: %s", name, b.Err))
			continue
		case !b.Evaluated():
			bad = append(bad, fmt.Sprintf("%s: skipped: %s", name, b.Skip))
			continue
		}
		for _, fl := range floors {
			strat := fl.Strategy
			if strat == "" {
				strat = "FETCH"
			}
			s, ok := b.Score(strat)
			if !ok {
				bad = append(bad, fmt.Sprintf("%s: no %s score", name, strat))
				continue
			}
			if s.Precision < fl.MinPrecision {
				bad = append(bad, fmt.Sprintf("%s: %s precision %.4f < floor %.4f",
					name, strat, s.Precision, fl.MinPrecision))
			}
			if s.Recall < fl.MinRecall {
				bad = append(bad, fmt.Sprintf("%s: %s recall %.4f < floor %.4f",
					name, strat, s.Recall, fl.MinRecall))
			}
		}
	}
	return bad
}
