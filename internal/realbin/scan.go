package realbin

import (
	"encoding/binary"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// ScanResult is the outcome of a host-directory walk: the candidate
// ELF files worth evaluating, plus counters for everything passed
// over. The walk itself never fails on a single bad entry —
// unreadable files and directories are counted and skipped.
type ScanResult struct {
	Candidates []string `json:"candidates"`
	// NonELF counts regular files that are not 64-bit little-endian
	// x86-64 ELFs (scripts, 32-bit binaries, data).
	NonELF int `json:"non_elf"`
	// TooLarge counts ELFs above the size cap.
	TooLarge int `json:"too_large"`
	// Unreadable counts entries stat/open refused.
	Unreadable int `json:"unreadable"`
}

// isX64ELF sniffs the 20-byte header prefix for a 64-bit LE x86-64
// ELF, without parsing the file.
func isX64ELF(hdr []byte) bool {
	return len(hdr) >= 20 &&
		hdr[0] == 0x7F && hdr[1] == 'E' && hdr[2] == 'L' && hdr[3] == 'F' &&
		hdr[4] == 2 && // ELFCLASS64
		hdr[5] == 1 && // little-endian
		binary.LittleEndian.Uint16(hdr[18:]) == 0x3E // EM_X86_64
}

// Scan walks directories for evaluable binaries. maxBytes > 0 skips
// larger files; symlinks are not followed (system bin dirs alias the
// same binary many times). Stripped binaries are still candidates —
// whether truth is derivable is only known after a full load, so that
// skip happens at evaluation time.
func Scan(dirs []string, maxBytes int64) *ScanResult {
	res := &ScanResult{}
	var hdr [20]byte
	for _, dir := range dirs {
		// The walk function swallows per-entry errors by design: one
		// unreadable subtree must not abort a host scan.
		_ = filepath.Walk(dir, func(path string, fi fs.FileInfo, err error) error {
			if err != nil {
				res.Unreadable++
				return nil
			}
			if !fi.Mode().IsRegular() {
				return nil
			}
			if maxBytes > 0 && fi.Size() > maxBytes {
				if f, err := os.Open(path); err == nil {
					if n, _ := io.ReadFull(f, hdr[:]); n == len(hdr) && isX64ELF(hdr[:]) {
						res.TooLarge++
					} else {
						res.NonELF++
					}
					f.Close()
				} else {
					res.Unreadable++
				}
				return nil
			}
			f, err := os.Open(path)
			if err != nil {
				res.Unreadable++
				return nil
			}
			n, _ := io.ReadFull(f, hdr[:])
			f.Close()
			if n < len(hdr) || !isX64ELF(hdr[:]) {
				res.NonELF++
				return nil
			}
			res.Candidates = append(res.Candidates, path)
			return nil
		})
	}
	return res
}
