package realbin

import (
	"encoding/binary"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"fetch/internal/arch"
)

// ScanResult is the outcome of a host-directory walk: the candidate
// ELF files worth evaluating, plus counters for everything passed
// over. The walk itself never fails on a single bad entry —
// unreadable files and directories are counted and skipped.
type ScanResult struct {
	Candidates []string `json:"candidates"`
	// NonELF counts regular files that are not 64-bit little-endian
	// ELFs (scripts, 32-bit binaries, data).
	NonELF int `json:"non_elf"`
	// OtherISA counts well-formed 64-bit LE ELFs whose e_machine has no
	// registered analysis backend (riscv64, s390x, ...). They are not
	// corrupt — just not evaluable — so they get their own bucket.
	OtherISA int `json:"other_isa"`
	// TooLarge counts supported-ISA ELFs above the size cap.
	TooLarge int `json:"too_large"`
	// Unreadable counts entries stat/open refused.
	Unreadable int `json:"unreadable"`
}

// sniffELF classifies the 20-byte header prefix without parsing the
// file: whether it is a 64-bit LE ELF at all, and whether its
// e_machine has a registered analysis backend (x86-64 and aarch64 in
// this codebase).
func sniffELF(hdr []byte) (isELF64, supported bool) {
	if len(hdr) < 20 ||
		hdr[0] != 0x7F || hdr[1] != 'E' || hdr[2] != 'L' || hdr[3] != 'F' ||
		hdr[4] != 2 || // ELFCLASS64
		hdr[5] != 1 { // little-endian
		return false, false
	}
	m := binary.LittleEndian.Uint16(hdr[18:])
	return true, m != 0 && arch.ForMachine(m) != nil
}

// Scan walks directories for evaluable binaries. maxBytes > 0 skips
// larger files; symlinks are not followed (system bin dirs alias the
// same binary many times). Stripped binaries are still candidates —
// whether truth is derivable is only known after a full load, so that
// skip happens at evaluation time.
func Scan(dirs []string, maxBytes int64) *ScanResult {
	res := &ScanResult{}
	var hdr [20]byte
	classify := func(path string) {
		f, err := os.Open(path)
		if err != nil {
			res.Unreadable++
			return
		}
		n, _ := io.ReadFull(f, hdr[:])
		f.Close()
		isELF, supported := sniffELF(hdr[:n])
		switch {
		case !isELF:
			res.NonELF++
		case !supported:
			res.OtherISA++
		default:
			res.TooLarge++
		}
	}
	for _, dir := range dirs {
		// The walk function swallows per-entry errors by design: one
		// unreadable subtree must not abort a host scan.
		_ = filepath.Walk(dir, func(path string, fi fs.FileInfo, err error) error {
			if err != nil {
				res.Unreadable++
				return nil
			}
			if !fi.Mode().IsRegular() {
				return nil
			}
			if maxBytes > 0 && fi.Size() > maxBytes {
				classify(path)
				return nil
			}
			f, err := os.Open(path)
			if err != nil {
				res.Unreadable++
				return nil
			}
			n, _ := io.ReadFull(f, hdr[:])
			f.Close()
			isELF, supported := sniffELF(hdr[:n])
			switch {
			case !isELF:
				res.NonELF++
			case !supported:
				res.OtherISA++
			default:
				res.Candidates = append(res.Candidates, path)
			}
			return nil
		})
	}
	return res
}
