package realbin

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"fetch/internal/elfx"
	"fetch/internal/synth"
)

// handImage builds a small image with a controlled symbol table.
func handImage() *elfx.Image {
	return &elfx.Image{
		Entry: 0x401000,
		Sections: []*elfx.Section{
			{Name: ".text", Addr: 0x401000, Data: bytes.Repeat([]byte{0xC3}, 0x100), Flags: elfx.FlagAlloc | elfx.FlagExec},
			{Name: ".data", Addr: 0x402000, Data: make([]byte, 0x20), Flags: elfx.FlagAlloc | elfx.FlagWrite},
		},
		Symbols: []elfx.Symbol{
			{Name: "main", Addr: 0x401000, Size: 0x20, Func: true},
			{Name: "frob", Addr: 0x401020, Size: 0x20, Func: true},
			{Name: "frob_alias", Addr: 0x401020, Size: 0x20, Func: true},
			{Name: "frob.cold", Addr: 0x401040, Size: 0x10, Func: true},
			{Name: "twiddle.part.1", Addr: 0x401050, Size: 0x10, Func: true},
			{Name: "coldfn", Addr: 0x401060, Size: 0x10, Func: true}, // not a part
			{Name: "data_obj", Addr: 0x402000, Size: 8, Func: false},
			{Name: "orphan", Addr: 0x900000, Size: 8, Func: true}, // outside any section
			{Name: "exported", Addr: 0x401070, Size: 0x10, Func: true, Dyn: true},
		},
	}
}

// TestDeriveTruthSymtab pins the symtab derivation rules: function
// symbols in executable sections become starts, aliases collapse,
// cold/part suffixes become Parts with resolved parents, and data,
// unmapped, and dynamic symbols stay out.
func TestDeriveTruthSymtab(t *testing.T) {
	truth, info := DeriveTruth(handImage())
	if info.Source != SourceSymtab || info.Partial {
		t.Fatalf("info = %+v, want full symtab truth", info)
	}
	wantStarts := map[uint64]bool{0x401000: true, 0x401020: true, 0x401060: true}
	if got := truth.StartSet(); len(got) != len(wantStarts) {
		t.Fatalf("starts = %#v, want %#v", got, wantStarts)
	} else {
		for a := range wantStarts {
			if !got[a] {
				t.Errorf("missing start %#x", a)
			}
		}
	}
	if len(truth.Parts) != 2 {
		t.Fatalf("parts = %+v, want frob.cold and twiddle.part.1", truth.Parts)
	}
	for _, p := range truth.Parts {
		if p.Name == "frob.cold" && p.Parent != 0x401020 {
			t.Errorf("frob.cold parent = %#x, want frob at 0x401020", p.Parent)
		}
		if p.Name == "twiddle.part.1" && p.Parent != 0 {
			t.Errorf("twiddle.part.1 parent = %#x, want unresolved 0", p.Parent)
		}
	}
}

// TestDeriveTruthDynsym pins the fallback ladder: with .symtab gone,
// surviving dynamic symbols yield partial truth; with nothing, no
// truth at all.
func TestDeriveTruthDynsym(t *testing.T) {
	im := handImage()
	var dynOnly []elfx.Symbol
	for _, s := range im.Symbols {
		if s.Dyn {
			dynOnly = append(dynOnly, s)
		}
	}
	im.Symbols = dynOnly
	truth, info := DeriveTruth(im)
	if info.Source != SourceDynsym || !info.Partial {
		t.Fatalf("info = %+v, want partial dynsym truth", info)
	}
	if len(truth.Funcs) != 1 || truth.Funcs[0].Addr != 0x401070 {
		t.Fatalf("funcs = %+v, want just the exported dynamic symbol", truth.Funcs)
	}

	im.Symbols = nil
	if tr, info := DeriveTruth(im); tr != nil || info.Source != SourceNone {
		t.Fatalf("stripped image yielded truth %v from %q", tr, info.Source)
	}
}

// TestDeriveTruthPclntab derives truth from a real unstripped Go
// binary's runtime function table — the toolchain's own go tool, since
// `go test` links its ephemeral test binaries without .symtab — and
// cross-checks it against the binary's symbol table: pclntab wins
// precedence and the two sources must agree on where functions start.
func TestDeriveTruthPclntab(t *testing.T) {
	goBin := filepath.Join(runtime.GOROOT(), "bin", "go")
	data, err := os.ReadFile(goBin)
	if err != nil {
		t.Skipf("reading %s: %v", goBin, err)
	}
	im, err := elfx.LoadELF(data)
	if err != nil {
		t.Skipf("%s not loadable here: %v", goBin, err)
	}
	truth, info := DeriveTruth(im)
	if info.Source != SourcePclntab {
		t.Skipf("%s has no usable pclntab (source %q)", goBin, info.Source)
	}
	if len(truth.Funcs) < 500 {
		t.Fatalf("only %d pclntab functions; a Go binary has thousands", len(truth.Funcs))
	}
	agree, disagree := 0, 0
	for _, s := range im.Symbols {
		if !s.Func || s.Dyn || !im.IsExec(s.Addr) {
			continue
		}
		if truth.IsStart(s.Addr) {
			agree++
		} else {
			disagree++
		}
	}
	if agree < 100 || disagree > agree/10 {
		t.Errorf("pclntab vs symtab: %d agree, %d disagree", agree, disagree)
	}
}

// TestPartBase pins the part-name grammar.
func TestPartBase(t *testing.T) {
	cases := []struct {
		name, base string
		part       bool
	}{
		{"frob.cold", "frob", true},
		{"frob.cold.3", "frob", true},
		{"frob.part.2", "frob", true},
		{"frob.isra.0", "", false},
		{"frob.constprop.1", "", false},
		{"coldfn", "", false},
		{"frob.coldstart", "", false},
		{".cold", "", false},
		{"plain", "", false},
	}
	for _, c := range cases {
		base, part := partBase(c.name)
		if part != c.part || base != c.base {
			t.Errorf("partBase(%q) = %q, %v; want %q, %v", c.name, base, part, c.base, c.part)
		}
	}
}

// evalSynth generates one synthetic binary and evaluates it through
// the real-binary lane, where its own symbol table is the truth.
func evalSynth(t *testing.T, seed int64) *BinaryReport {
	t.Helper()
	cfg := synth.DefaultConfig("realbin-synth", seed, synth.O2, synth.GCC, synth.LangC)
	cfg.NumFuncs = 40
	im, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("synth.Generate: %v", err)
	}
	return EvalImage(cfg.Name, im)
}

// TestEvalImageSynthetic runs the full strategy ladder on a generated
// binary whose symbols provide the truth. The scores must reproduce
// the lane's core claim: the full pipeline strictly improves on the
// weaker strategies and lands near the oracle.
func TestEvalImageSynthetic(t *testing.T) {
	rep := evalSynth(t, 7)
	if rep.Err != "" || rep.Skip != "" {
		t.Fatalf("report not evaluated: err=%q skip=%q", rep.Err, rep.Skip)
	}
	if rep.Truth.Source != SourceSymtab || rep.TruthFuncs == 0 {
		t.Fatalf("truth = %+v (%d funcs), want symtab truth", rep.Truth, rep.TruthFuncs)
	}
	if len(rep.Scores) != len(StrategyNames) {
		t.Fatalf("got %d scores, want %d", len(rep.Scores), len(StrategyNames))
	}
	fetch, _ := rep.Score("FETCH")
	fde, _ := rep.Score("FDE")
	if fetch.Recall < fde.Recall || fetch.F1 < fde.F1 {
		t.Errorf("FETCH (%+v) does not improve on FDE (%+v)", fetch, fde)
	}
	if fetch.Precision < 0.95 || fetch.Recall < 0.95 {
		t.Errorf("FETCH scored P=%.3f R=%.3f on a synthetic binary; expected near-oracle", fetch.Precision, fetch.Recall)
	}
	if rep.SyntheticEHFrame {
		t.Error("synthetic binary has a real .eh_frame; none should be injected")
	}
	if rep.EHStats.Entries == 0 {
		t.Error("decoder stats not captured")
	}
}

// TestEvalImageA64 runs the real-binary lane end to end on an aarch64
// image: symtab-derived truth, the full strategy ladder, near-oracle
// scores — the second ISA rides the identical evaluation path.
func TestEvalImageA64(t *testing.T) {
	cfg := synth.DefaultConfig("realbin-a64", 7, synth.O2, synth.GCC, synth.LangC)
	cfg.NumFuncs = 40
	cfg.Arch = "a64"
	im, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("synth.Generate: %v", err)
	}
	rep := EvalImage(cfg.Name, im)
	if rep.Err != "" || rep.Skip != "" {
		t.Fatalf("report not evaluated: err=%q skip=%q", rep.Err, rep.Skip)
	}
	if rep.Truth.Source != SourceSymtab || rep.TruthFuncs == 0 {
		t.Fatalf("truth = %+v (%d funcs), want symtab truth", rep.Truth, rep.TruthFuncs)
	}
	fetch, _ := rep.Score("FETCH")
	if fetch.Precision < 0.95 || fetch.Recall < 0.95 {
		t.Errorf("FETCH scored P=%.3f R=%.3f on an aarch64 synthetic binary; expected near-oracle",
			fetch.Precision, fetch.Recall)
	}
}

// TestEvalImageStrippedSkips pins the graceful path for binaries with
// no derivable truth.
func TestEvalImageStrippedSkips(t *testing.T) {
	cfg := synth.DefaultConfig("stripped", 3, synth.O2, synth.GCC, synth.LangC)
	cfg.NumFuncs = 10
	im, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := EvalImage("stripped", im.Strip())
	if rep.Evaluated() || rep.Skip == "" {
		t.Fatalf("stripped image evaluated anyway: %+v", rep)
	}
}

// TestEvalDataJunk pins that non-ELF bytes skip, not fail.
func TestEvalDataJunk(t *testing.T) {
	rep := EvalData("junk", []byte("#!/bin/sh\necho hi\n"))
	if rep.Err != "" || rep.Skip == "" {
		t.Fatalf("junk input: err=%q skip=%q, want a skip", rep.Err, rep.Skip)
	}
}

// TestSyntheticEHFrameInjection feeds an image without .eh_frame
// through the lane: analysis must still run (via the injected empty
// table) instead of hard-failing, with the injection reported.
func TestSyntheticEHFrameInjection(t *testing.T) {
	cfg := synth.DefaultConfig("noeh", 5, synth.O2, synth.GCC, synth.LangC)
	cfg.NumFuncs = 10
	im, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var secs []*elfx.Section
	for _, s := range im.Sections {
		if s.Name != ".eh_frame" {
			secs = append(secs, s)
		}
	}
	im.Sections = secs
	rep := EvalImage("noeh", im)
	if rep.Err != "" {
		t.Fatalf("no-.eh_frame image failed: %s", rep.Err)
	}
	if !rep.SyntheticEHFrame {
		t.Error("injection not reported")
	}
	if fetch, ok := rep.Score("FETCH"); !ok || fetch.Recall == 0 {
		t.Errorf("FETCH found nothing without .eh_frame: %+v", fetch)
	}
	// The injected section must not collide with real bytes.
	if _, ok := im.SectionAt(syntheticEHFrameAddr(im)); ok {
		t.Error("synthetic .eh_frame address overlaps a mapped section")
	}
}

// corpusDir writes a temp corpus: two loadable synthetic binaries, a
// stripped one, and junk.
func corpusDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for i, seed := range []int64{11, 12} {
		cfg := synth.DefaultConfig("corp", seed, synth.O2, synth.GCC, synth.LangC)
		cfg.NumFuncs = 15
		im, _, err := synth.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := elfx.WriteELF(im)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, []string{"a.bin", "b.bin"}[i]), blob, 0o755); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			stripped, err := elfx.WriteELF(im.Strip())
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "stripped.bin"), stripped, 0o755); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.txt"), []byte("not an elf"), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestEvalFilesAndGolden runs a corpus end to end: per-binary rows in
// input order, skip/fail accounting, aggregation, and golden floors
// both holding and violated.
func TestEvalFilesAndGolden(t *testing.T) {
	dir := corpusDir(t)
	paths := []string{
		filepath.Join(dir, "a.bin"),
		filepath.Join(dir, "b.bin"),
		filepath.Join(dir, "stripped.bin"),
		filepath.Join(dir, "junk.txt"),
		filepath.Join(dir, "missing.bin"),
	}
	rep := EvalFiles(nil, paths, 2, 0)
	if len(rep.Binaries) != len(paths) {
		t.Fatalf("%d rows for %d paths", len(rep.Binaries), len(paths))
	}
	if rep.Evaluated != 2 || rep.Skipped != 2 || rep.Failed != 1 {
		t.Fatalf("evaluated/skipped/failed = %d/%d/%d, want 2/2/1", rep.Evaluated, rep.Skipped, rep.Failed)
	}
	if len(rep.Aggregate) != len(StrategyNames) {
		t.Fatalf("aggregate rows = %d, want %d", len(rep.Aggregate), len(StrategyNames))
	}
	var fetchAgg AggregateScore
	for _, a := range rep.Aggregate {
		if a.Strategy == "FETCH" {
			fetchAgg = a
		}
	}
	if fetchAgg.TP == 0 || fetchAgg.Precision < 0.9 {
		t.Errorf("corpus FETCH aggregate %+v too weak", fetchAgg)
	}

	good := Golden{paths[0]: {{MinPrecision: 0.9, MinRecall: 0.9}}}
	if bad := good.Check(rep); len(bad) != 0 {
		t.Errorf("passing floors reported violations: %v", bad)
	}
	bad := Golden{
		paths[0]:      {{MinPrecision: 1.01}},            // impossible floor
		paths[2]:      {{MinRecall: 0.1}},                // stripped → skipped
		"nonexistent": {{Strategy: "FDE", MinRecall: 0}}, // not in run
	}
	if got := bad.Check(rep); len(got) != 3 {
		t.Errorf("want 3 violations, got %v", got)
	}
}

// TestScan pins the host-walk filters: ELF candidates found, junk and
// oversized files counted, nothing fatal.
func TestScan(t *testing.T) {
	dir := corpusDir(t)
	// Size the cap just above the largest real candidate so only the
	// deliberately oversized ELF trips it.
	var maxBytes int64
	for _, n := range []string{"a.bin", "b.bin", "stripped.bin"} {
		fi, err := os.Stat(filepath.Join(dir, n))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > maxBytes {
			maxBytes = fi.Size()
		}
	}
	maxBytes += 1024
	big := bytes.Repeat([]byte{0}, int(maxBytes)+4096)
	copy(big, []byte{0x7F, 'E', 'L', 'F', 2, 1, 1, 0})
	big[18], big[19] = 0x3E, 0
	if err := os.WriteFile(filepath.Join(dir, "big.bin"), big, 0o755); err != nil {
		t.Fatal(err)
	}
	elf32 := append([]byte{0x7F, 'E', 'L', 'F', 1, 1, 1, 0}, make([]byte, 32)...)
	if err := os.WriteFile(filepath.Join(dir, "elf32.bin"), elf32, 0o755); err != nil {
		t.Fatal(err)
	}
	// A well-formed ELF64 header of an ISA without a registered backend
	// (riscv64, e_machine 243) lands in its own bucket, not NonELF.
	riscv := append([]byte{0x7F, 'E', 'L', 'F', 2, 1, 1, 0}, make([]byte, 32)...)
	riscv[18], riscv[19] = 243, 0
	if err := os.WriteFile(filepath.Join(dir, "riscv.bin"), riscv, 0o755); err != nil {
		t.Fatal(err)
	}

	res := Scan([]string{dir}, maxBytes)
	if len(res.Candidates) != 3 {
		t.Errorf("candidates = %v, want the three synthetic binaries", res.Candidates)
	}
	if res.TooLarge != 1 {
		t.Errorf("TooLarge = %d, want 1 (big.bin)", res.TooLarge)
	}
	if res.NonELF != 2 {
		t.Errorf("NonELF = %d, want 2 (junk.txt, elf32.bin)", res.NonELF)
	}
	if res.OtherISA != 1 {
		t.Errorf("OtherISA = %d, want 1 (riscv.bin)", res.OtherISA)
	}
	if res2 := Scan([]string{filepath.Join(dir, "does-not-exist")}, 0); len(res2.Candidates) != 0 || res2.Unreadable != 1 {
		t.Errorf("missing dir: %+v, want one unreadable entry", res2)
	}
}

// TestEvalFileLargerThanBudgetDoesNotMaterialize is the regression
// test for the file-backed evaluation path: a scan over a binary far
// larger than any in-memory budget must evaluate successfully while
// keeping heap-materialized section bytes a small fraction of the file
// — the bulk stays on disk behind mmap windows. The buffered-era
// EvalFile (os.ReadFile + LoadELF) materialized everything and fails
// the MemStats assertion by construction.
func TestEvalFileLargerThanBudgetDoesNotMaterialize(t *testing.T) {
	blobSize := 48 << 20
	if testing.Short() {
		blobSize = 16 << 20
	}
	cfg := synth.DefaultConfig("bigscan", 11, synth.O2, synth.GCC, synth.LangC)
	cfg.NumFuncs = 20
	im, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("synth.Generate: %v", err)
	}
	// Bolt a huge non-executable blob onto the image, placed past
	// everything mapped so it shadows nothing.
	var top uint64
	for _, s := range im.Sections {
		if s.End() > top {
			top = s.End()
		}
	}
	im.Sections = append(im.Sections, &elfx.Section{
		Name:  ".blob",
		Addr:  (top + 0xFFF) &^ 0xFFF,
		Data:  make([]byte, blobSize),
		Flags: elfx.FlagAlloc,
	})
	raw, err := elfx.WriteELF(im)
	if err != nil {
		t.Fatalf("WriteELF: %v", err)
	}
	path := filepath.Join(t.TempDir(), "big.elf")
	if err := os.WriteFile(path, raw, 0o755); err != nil {
		t.Fatal(err)
	}

	// The public entry point: evaluation over the big file succeeds.
	rep := EvalFile(path, 0)
	if rep.Err != "" || rep.Skip != "" {
		t.Fatalf("EvalFile on big binary: err=%q skip=%q", rep.Err, rep.Skip)
	}
	if rep.SizeBytes != len(raw) {
		t.Errorf("SizeBytes = %d, want %d", rep.SizeBytes, len(raw))
	}
	// A cap below the file size still skips cleanly, never fails.
	if capped := EvalFile(path, int64(len(raw)-1)); capped.Skip == "" || capped.Err != "" {
		t.Fatalf("capped EvalFile: err=%q skip=%q, want a skip", capped.Err, capped.Skip)
	}

	// The same evaluation with an observable image: heap-materialized
	// bytes stay a small fraction of the file while mmap serves the
	// rest. (Without a working mmap the pread fallback materializes
	// whatever the analysis touches; only assert where mapping works.)
	img, err := elfx.LoadELFFile(path)
	if err != nil {
		t.Fatalf("LoadELFFile: %v", err)
	}
	defer img.Close()
	rep2 := EvalImage("bigscan", img)
	if rep2.Err != "" || rep2.Skip != "" {
		t.Fatalf("EvalImage on big binary: err=%q skip=%q", rep2.Err, rep2.Skip)
	}
	ms := img.MemStats()
	if ms.MappedBytes == 0 {
		t.Skip("platform did not mmap the image; materialization bound not applicable")
	}
	if limit := int64(len(raw)) / 4; ms.MaterializedBytes > limit {
		t.Errorf("materialized %d bytes of a %d-byte file (limit %d): the blob went on the heap",
			ms.MaterializedBytes, len(raw), limit)
	}
	if runtime.GOOS == "linux" && ms.MaterializedBytes > 4<<20 {
		t.Errorf("materialized %d bytes on linux; expected well under 4 MiB", ms.MaterializedBytes)
	}
}
