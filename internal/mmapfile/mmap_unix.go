//go:build unix

package mmapfile

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and shared.
func mapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ, syscall.MAP_SHARED)
}

// unmapFile releases a mapFile mapping.
func unmapFile(data []byte) {
	_ = syscall.Munmap(data)
}
