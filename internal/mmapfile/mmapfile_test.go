package mmapfile

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// writeTemp writes content to a fresh file under the test's temp dir.
func writeTemp(t *testing.T, content []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.bin")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatalf("writing temp file: %v", err)
	}
	return path
}

// testContent is 1 MiB of position-dependent bytes, so any off-by-one
// in a window or pread shows up as a value mismatch.
func testContent() []byte {
	b := make([]byte, 1<<20)
	for i := range b {
		b[i] = byte(i * 7)
	}
	return b
}

func TestReadAtMatchesContent(t *testing.T) {
	content := testContent()
	path := writeTemp(t, content)
	for _, mode := range []struct {
		name string
		open func(string) (*File, error)
	}{{"mapped", Open}, {"pread", OpenPread}} {
		t.Run(mode.name, func(t *testing.T) {
			f, err := mode.open(path)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer f.Close()
			if f.Size() != int64(len(content)) {
				t.Fatalf("Size = %d, want %d", f.Size(), len(content))
			}
			buf := make([]byte, 4096)
			for _, off := range []int64{0, 1, 4095, int64(len(content)) - 4096} {
				n, err := f.ReadAt(buf, off)
				if err != nil || n != len(buf) {
					t.Fatalf("ReadAt(%d) = %d, %v", off, n, err)
				}
				if !bytes.Equal(buf, content[off:off+int64(n)]) {
					t.Fatalf("ReadAt(%d) bytes differ", off)
				}
			}
			// Reading past the end is a short read ending in io.EOF.
			n, err := f.ReadAt(buf, f.Size()-100)
			if n != 100 || err != io.EOF {
				t.Fatalf("short ReadAt = %d, %v; want 100, EOF", n, err)
			}
			if _, err := f.ReadAt(buf, f.Size()); err != io.EOF {
				t.Fatalf("ReadAt past end = %v, want EOF", err)
			}
			if _, err := f.ReadAt(buf, -1); err == nil {
				t.Fatal("ReadAt(-1) should fail")
			}
		})
	}
}

func TestWindowZeroCopyAndBounds(t *testing.T) {
	content := testContent()
	f, err := Open(writeTemp(t, content))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	if !f.Mapped() {
		t.Skip("platform refused the mapping; window path not available")
	}
	w, err := f.Window(4096, 8192)
	if err != nil {
		t.Fatalf("Window: %v", err)
	}
	defer w.Close()
	if !bytes.Equal(w.Bytes(), content[4096:4096+8192]) {
		t.Fatal("window bytes differ from file content")
	}
	for _, bad := range [][2]int64{{-1, 10}, {0, -1}, {f.Size(), 1}, {f.Size() - 10, 11}} {
		if _, err := f.Window(bad[0], bad[1]); err == nil {
			t.Fatalf("Window(%d,%d) should fail", bad[0], bad[1])
		}
	}
}

func TestPreadModeHasNoWindows(t *testing.T) {
	f, err := OpenPread(writeTemp(t, []byte("hello")))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	if f.Mapped() {
		t.Fatal("OpenPread reported a mapping")
	}
	if _, err := f.Window(0, 5); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("Window on pread file = %v, want ErrNotMapped", err)
	}
}

// TestCloseWhileWindowsHeld is the lifetime contract: Close while a
// reader still holds a window must keep that window's bytes valid, and
// every new request after Close errors cleanly instead of faulting.
func TestCloseWhileWindowsHeld(t *testing.T) {
	content := testContent()
	f, err := Open(writeTemp(t, content))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if !f.Mapped() {
		f.Close()
		t.Skip("platform refused the mapping")
	}
	w, err := f.Window(0, f.Size())
	if err != nil {
		t.Fatalf("Window: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The held window survives Close: every byte still reads correctly.
	if !bytes.Equal(w.Bytes(), content) {
		t.Fatal("window bytes invalid after file Close")
	}
	// New requests fail cleanly.
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadAt after Close = %v, want ErrClosed", err)
	}
	if _, err := f.Window(0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Window after Close = %v, want ErrClosed", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	w.Close()
	w.Close() // idempotent
	if w.Bytes() != nil {
		t.Fatal("window bytes non-nil after window Close")
	}
}

// TestConcurrentReadersAndClose hammers the refcount under the race
// detector: many goroutines take windows and pread while the file is
// closed mid-flight. Every access must either succeed with correct
// bytes or fail with ErrClosed — never fault, never return garbage.
func TestConcurrentReadersAndClose(t *testing.T) {
	content := testContent()
	f, err := Open(writeTemp(t, content))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	mapped := f.Mapped()
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			buf := make([]byte, 512)
			for i := 0; i < 200; i++ {
				off := int64((g*200 + i) * 512 % (len(content) - 512))
				if mapped && i%2 == 0 {
					w, err := f.Window(off, 512)
					if errors.Is(err, ErrClosed) {
						continue
					}
					if err != nil {
						t.Errorf("Window(%d): %v", off, err)
						return
					}
					if !bytes.Equal(w.Bytes(), content[off:off+512]) {
						t.Errorf("window bytes differ at %d", off)
					}
					w.Close()
					continue
				}
				n, err := f.ReadAt(buf, off)
				if errors.Is(err, ErrClosed) {
					continue
				}
				if err != nil || n != 512 {
					t.Errorf("ReadAt(%d) = %d, %v", off, n, err)
					return
				}
				if !bytes.Equal(buf, content[off:off+512]) {
					t.Errorf("pread bytes differ at %d", off)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		f.Close()
	}()
	close(start)
	wg.Wait()
	f.Close()
}

// TestTruncatedUnderfoot shrinks the file after Open: the pread path
// must degrade to errors (short reads), never serve stale bytes as a
// full read.
func TestTruncatedUnderfoot(t *testing.T) {
	content := testContent()
	path := writeTemp(t, content)
	f, err := OpenPread(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	if err := os.Truncate(path, 1024); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	// Within the surviving prefix reads still work.
	buf := make([]byte, 512)
	if n, err := f.ReadAt(buf, 0); err != nil || n != 512 {
		t.Fatalf("ReadAt(0) after truncate = %d, %v", n, err)
	}
	// Past the new end the snapshotted size promises bytes the file no
	// longer has: that must surface as an error, not silent zeros.
	n, err := f.ReadAt(buf, 2048)
	if err == nil && n == len(buf) {
		t.Fatal("full read past truncation point should fail")
	}
}

// TestGrowingUnderfoot appends after Open: the Open-time size snapshot
// must keep new bytes invisible.
func TestGrowingUnderfoot(t *testing.T) {
	path := writeTemp(t, []byte("0123456789"))
	f, err := OpenPread(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	g, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("reopen for append: %v", err)
	}
	if _, err := g.Write(bytes.Repeat([]byte{0xFF}, 1024)); err != nil {
		t.Fatalf("append: %v", err)
	}
	g.Close()
	if f.Size() != 10 {
		t.Fatalf("Size changed after growth: %d", f.Size())
	}
	buf := make([]byte, 64)
	n, err := f.ReadAt(buf, 0)
	if n != 10 || err != io.EOF {
		t.Fatalf("ReadAt over grown file = %d, %v; want 10, EOF", n, err)
	}
	if _, err := f.ReadAt(buf, 10); err != io.EOF {
		t.Fatalf("ReadAt at snapshotted end = %v, want EOF", err)
	}
}

func TestEmptyFile(t *testing.T) {
	f, err := Open(writeTemp(t, nil))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	if f.Mapped() {
		t.Fatal("empty file should not map")
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); err != io.EOF {
		t.Fatalf("ReadAt on empty file = %v, want EOF", err)
	}
}
