// Package mmapfile provides read-only file access with zero-copy
// memory-mapped windows where the platform supports it and a plain
// pread fallback everywhere else. It is the backing layer of
// elfx.LoadELFFile: analyses read section bytes as windows of one
// shared mapping instead of materializing whole binaries on the heap.
//
// Lifetime is explicit and safe under concurrency: windows are
// reference-counted, Close refuses nothing and faults never — a file
// closed while readers still hold windows keeps its mapping alive
// until the last window is released, and window requests after Close
// fail with ErrClosed instead of touching freed memory. The size is
// snapshotted at Open: a file that grows underneath never leaks new
// bytes into reads, and one that is truncated underneath degrades to
// short-read errors on the pread path (io.EOF from ReadAt) rather
// than corruption.
package mmapfile

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// ErrClosed is returned by ReadAt and Window after Close.
var ErrClosed = errors.New("mmapfile: file closed")

// ErrNotMapped is returned by Window when the file has no memory
// mapping (the platform refused one, the file is empty, or the pread
// mode was forced); callers fall back to ReadAt with their own buffer.
var ErrNotMapped = errors.New("mmapfile: file not memory-mapped")

// File is a read-only file opened for windowed access. All methods are
// safe for concurrent use.
type File struct {
	f    *os.File
	size int64
	// data is the whole-file mapping; nil in pread mode.
	data []byte

	mu sync.Mutex
	// refs counts reasons the mapping must stay alive: 1 for the open
	// file itself plus one per outstanding Window. The mapping is
	// released exactly when the count reaches zero.
	refs   int
	closed bool
}

// Open opens path read-only, mapping it into memory when the platform
// allows; when mapping fails (or the file is empty) the File serves
// pread-only and Window returns ErrNotMapped.
func Open(path string) (*File, error) {
	return open(path, true)
}

// OpenPread opens path read-only without attempting a memory mapping:
// every access goes through pread. Tests use it to exercise the
// fallback path deterministically; behavior is otherwise identical to
// an Open whose mapping failed.
func OpenPread(path string) (*File, error) {
	return open(path, false)
}

func open(path string, tryMap bool) (*File, error) {
	osf, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mmapfile: %w", err)
	}
	fi, err := osf.Stat()
	if err != nil {
		osf.Close()
		return nil, fmt.Errorf("mmapfile: %w", err)
	}
	f := &File{f: osf, size: fi.Size(), refs: 1}
	if tryMap && f.size > 0 {
		// A failed mapping is not an error: the file still works in
		// pread mode, just without zero-copy windows.
		if data, err := mapFile(osf, f.size); err == nil {
			f.data = data
		}
	}
	return f, nil
}

// Size returns the file size snapshotted at Open. Reads never go past
// it, even when the file grows underneath.
func (f *File) Size() int64 { return f.size }

// Mapped reports whether the file has a zero-copy memory mapping.
func (f *File) Mapped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.data != nil
}

// ReadAt implements io.ReaderAt with pread, bounded by the Open-time
// size: reading past it returns io.EOF (short read), and a file
// truncated underneath surfaces the same way — an error, never stale
// or corrupt bytes presented as valid. ReadAt fails with ErrClosed
// after Close.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, ErrClosed
	}
	osf := f.f
	// Hold a reference across the read so a concurrent Close cannot
	// invalidate the descriptor mid-pread.
	f.refs++
	f.mu.Unlock()
	defer f.unref()

	if off < 0 {
		return 0, fmt.Errorf("mmapfile: negative offset %d", off)
	}
	if off >= f.size {
		return 0, io.EOF
	}
	short := false
	if max := f.size - off; int64(len(p)) > max {
		p = p[:max]
		short = true
	}
	n, err := osf.ReadAt(p, off)
	if err == nil && short {
		err = io.EOF
	}
	return n, err
}

// Window returns a zero-copy view of [off, off+n) backed by the
// mapping. The bytes stay valid — even across Close — until the
// window's Close releases its reference; requests on an unmapped file
// return ErrNotMapped and requests outside the Open-time size return
// an error.
func (f *File) Window(off, n int64) (*Window, error) {
	if off < 0 || n < 0 || off+n > f.size || off+n < off {
		return nil, fmt.Errorf("mmapfile: window [%d,+%d) outside file of %d bytes", off, n, f.size)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	// Order matters: a closed file must answer ErrClosed even though
	// the mapping may already be released, and the mapping pointer may
	// only be inspected under the lock (unref nils it concurrently).
	if f.closed {
		return nil, ErrClosed
	}
	if f.data == nil {
		return nil, ErrNotMapped
	}
	f.refs++
	return &Window{f: f, b: f.data[off : off+n : off+n]}, nil
}

// Close releases the file: the descriptor is closed immediately, new
// ReadAt/Window calls fail with ErrClosed, and the mapping is released
// once the last outstanding Window is closed. Close never invalidates
// bytes a live Window can still see, and closing twice is a no-op.
func (f *File) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	err := f.f.Close()
	f.mu.Unlock()
	f.unref()
	return err
}

// unref drops one mapping reference, unmapping at zero.
func (f *File) unref() {
	f.mu.Lock()
	f.refs--
	release := f.refs == 0 && f.data != nil
	data := f.data
	if release {
		f.data = nil
	}
	f.mu.Unlock()
	if release {
		unmapFile(data)
	}
}

// Window is one reference-counted zero-copy view of a mapped file.
type Window struct {
	f *File

	mu sync.Mutex
	b  []byte
}

// Bytes returns the window's view of the mapping; nil after Close. The
// slice must not be retained past Close.
func (w *Window) Bytes() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b
}

// Close releases the window's reference on the mapping; closing twice
// is a no-op.
func (w *Window) Close() {
	w.mu.Lock()
	released := w.b != nil
	w.b = nil
	w.mu.Unlock()
	if released {
		w.f.unref()
	}
}
