//go:build !unix

package mmapfile

import "os"

// mapFile always fails on platforms without a mapping implementation;
// the File then serves pread-only and Window returns ErrNotMapped.
func mapFile(*os.File, int64) ([]byte, error) {
	return nil, ErrNotMapped
}

// unmapFile is unreachable without mapFile ever succeeding.
func unmapFile([]byte) {}
