package fetch

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
)

// batchSamples generates n distinct in-memory sample binaries.
func batchSamples(t *testing.T, n int) []Input {
	t.Helper()
	inputs := make([]Input, n)
	for i := range inputs {
		raw, _, err := GenerateSample(SampleConfig{Seed: int64(7100 + i), NumFuncs: 40, Stripped: true})
		if err != nil {
			t.Fatalf("GenerateSample %d: %v", i, err)
		}
		inputs[i] = Input{Name: string(rune('a' + i)), Data: raw}
	}
	return inputs
}

func TestAnalyzeBatch(t *testing.T) {
	valid := batchSamples(t, 4)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	tests := []struct {
		name    string
		inputs  []Input
		opts    BatchOptions
		wantErr map[int]bool // index -> item must fail
	}{
		{
			name:   "empty input",
			inputs: nil,
			opts:   BatchOptions{Jobs: 4},
		},
		{
			name:   "all valid",
			inputs: valid,
			opts:   BatchOptions{Jobs: 2},
		},
		{
			name: "corrupt ELF among valid ones",
			inputs: []Input{
				valid[0],
				{Name: "corrupt", Data: []byte("\x7fELF not really")},
				valid[1],
			},
			opts:    BatchOptions{Jobs: 3},
			wantErr: map[int]bool{1: true},
		},
		{
			name: "missing file among valid ones",
			inputs: []Input{
				valid[0],
				{Path: "/nonexistent/binary"},
				valid[1],
			},
			opts:    BatchOptions{Jobs: 2},
			wantErr: map[int]bool{1: true},
		},
		{
			name:    "context cancellation stops early",
			inputs:  valid,
			opts:    BatchOptions{Jobs: 2, Context: cancelled},
			wantErr: map[int]bool{0: true, 1: true, 2: true, 3: true},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			results := AnalyzeBatch(tc.inputs, tc.opts)
			if len(results) != len(tc.inputs) {
				t.Fatalf("got %d results for %d inputs", len(results), len(tc.inputs))
			}
			for i, br := range results {
				wantName := tc.inputs[i].Name
				if wantName == "" {
					wantName = tc.inputs[i].Path
				}
				if br.Name != wantName {
					t.Errorf("result %d name %q, want %q (order broken?)", i, br.Name, wantName)
				}
				if tc.wantErr[i] {
					if br.Err == nil {
						t.Errorf("result %d (%s): expected error", i, br.Name)
					}
					continue
				}
				if br.Err != nil {
					t.Errorf("result %d (%s): unexpected error %v", i, br.Name, br.Err)
					continue
				}
				if br.Result == nil || len(br.Result.FunctionStarts) == 0 {
					t.Errorf("result %d (%s): empty analysis", i, br.Name)
				}
			}
		})
	}
}

// TestAnalyzeBatchCancelledContextError pins the per-item error to the
// context cause.
func TestAnalyzeBatchCancelledContextError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, br := range AnalyzeBatch(batchSamples(t, 3), BatchOptions{Context: ctx, Jobs: 2}) {
		if !errors.Is(br.Err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", br.Name, br.Err)
		}
	}
}

// zeroWall clears the pass wall-clock times — the only legitimately
// non-deterministic part of a Result — so DeepEqual covers everything
// else, including the session's decode/reuse counters.
func zeroWall(rs ...*Result) {
	for _, r := range rs {
		if r == nil {
			continue
		}
		for i := range r.Stats.Passes {
			r.Stats.Passes[i].Wall = 0
		}
	}
}

// TestAnalyzeBatchDeterminism proves jobs=1 and jobs=NumCPU produce
// identical results, and that both match the sequential Analyze path.
func TestAnalyzeBatchDeterminism(t *testing.T) {
	inputs := batchSamples(t, 6)
	seq := AnalyzeBatch(inputs, BatchOptions{Jobs: 1})
	par := AnalyzeBatch(inputs, BatchOptions{Jobs: runtime.NumCPU() * 2})
	for i := range seq {
		zeroWall(seq[i].Result, par[i].Result)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("jobs=1 and parallel batch results differ")
	}
	for i, in := range inputs {
		direct, err := Analyze(in.Data)
		if err != nil {
			t.Fatalf("Analyze %d: %v", i, err)
		}
		zeroWall(direct)
		if !reflect.DeepEqual(seq[i].Result, direct) {
			t.Errorf("batch result %d differs from direct Analyze", i)
		}
	}
}

// TestAnalyzeBatchOptionsApply confirms per-batch Options reach every
// item (FDEOnly must suppress pointer- and tail-call-derived starts).
func TestAnalyzeBatchOptionsApply(t *testing.T) {
	inputs := batchSamples(t, 2)
	for _, br := range AnalyzeBatch(inputs, BatchOptions{Jobs: 2, Options: []Option{FDEOnly()}}) {
		if br.Err != nil {
			t.Fatalf("%s: %v", br.Name, br.Err)
		}
		if n := len(br.Result.NewFromPointers); n != 0 {
			t.Errorf("%s: FDEOnly batch still found %d pointer starts", br.Name, n)
		}
		if n := len(br.Result.NewFromTailCalls); n != 0 {
			t.Errorf("%s: FDEOnly batch still found %d tail-call starts", br.Name, n)
		}
	}
}

// TestAnalyzeBatchFromDisk exercises the Path side of Input.
func TestAnalyzeBatchFromDisk(t *testing.T) {
	raw, _, err := GenerateSample(SampleConfig{Seed: 7200, NumFuncs: 30, Stripped: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sample.elf")
	if err := os.WriteFile(path, raw, 0o755); err != nil {
		t.Fatal(err)
	}
	results := AnalyzeBatch([]Input{{Path: path}}, BatchOptions{})
	if results[0].Err != nil {
		t.Fatalf("%v", results[0].Err)
	}
	if results[0].Name != path {
		t.Errorf("name defaulted to %q, want path %q", results[0].Name, path)
	}
	direct, err := AnalyzeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	zeroWall(results[0].Result, direct)
	if !reflect.DeepEqual(results[0].Result, direct) {
		t.Error("batch-from-disk result differs from AnalyzeFile")
	}
}

// TestAnalyzeBatchDedupsIdenticalData proves byte-identical inputs are
// analyzed once: every duplicate's BatchResult shares the single
// group's Result.
func TestAnalyzeBatchDedupsIdenticalData(t *testing.T) {
	distinct := batchSamples(t, 2)
	inputs := []Input{
		{Name: "a0", Data: distinct[0].Data},
		{Name: "b0", Data: distinct[1].Data},
		{Name: "a1", Data: append([]byte(nil), distinct[0].Data...)}, // equal bytes, distinct backing array
		{Name: "a2", Data: distinct[0].Data},
		{Name: "b1", Data: distinct[1].Data},
	}
	results := AnalyzeBatch(inputs, BatchOptions{Jobs: 4})
	for i, br := range results {
		if br.Err != nil {
			t.Fatalf("item %d: %v", i, br.Err)
		}
	}
	if results[0].Result != results[2].Result || results[0].Result != results[3].Result {
		t.Error("duplicates of binary a did not share one analysis")
	}
	if results[1].Result != results[4].Result {
		t.Error("duplicates of binary b did not share one analysis")
	}
	if results[0].Result == results[1].Result {
		t.Error("distinct binaries aliased")
	}
}

// TestAnalyzeBatchDedupCountsOneAnalysisPerDistinctBinary uses cache
// put counters to verify the pool saw each distinct binary exactly
// once.
func TestAnalyzeBatchDedupCountsOneAnalysisPerDistinctBinary(t *testing.T) {
	cache, err := NewCache(CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	distinct := batchSamples(t, 3)
	var inputs []Input
	for rep := 0; rep < 4; rep++ {
		inputs = append(inputs, distinct...)
	}
	results := AnalyzeBatch(inputs, BatchOptions{Jobs: 4, Cache: cache})
	for i, br := range results {
		if br.Err != nil || br.Result == nil {
			t.Fatalf("item %d: %v", i, br.Err)
		}
	}
	st := cache.Stats()
	if hits, misses, puts := resultTier(st); puts != 3 || misses != 3 {
		t.Fatalf("expected exactly one analysis per distinct binary, counters: %+v", st)
	} else if hits != 0 {
		t.Fatalf("first batch should not hit (dedup happens before the cache): %+v", st)
	}

	// A second batch over the same corpus is served entirely from the
	// cache: one lookup per distinct binary, zero new analyses.
	AnalyzeBatch(inputs, BatchOptions{Jobs: 4, Cache: cache})
	st = cache.Stats()
	if hits, misses, puts := resultTier(st); puts != 3 || hits != 3 || misses != 3 {
		t.Fatalf("second batch should be one cache hit per distinct binary: %+v", st)
	}
}

// TestAnalyzeBatchDedupSamePath dedups repeated Path inputs and fans
// shared failures out to every duplicate.
func TestAnalyzeBatchDedupSamePath(t *testing.T) {
	raw, _, err := GenerateSample(SampleConfig{Seed: 7300, NumFuncs: 30, Stripped: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dup.elf")
	if err := os.WriteFile(path, raw, 0o755); err != nil {
		t.Fatal(err)
	}
	results := AnalyzeBatch([]Input{
		{Name: "x", Path: path},
		{Name: "y", Path: path},
		{Name: "gone1", Path: "/nonexistent/binary"},
		{Name: "gone2", Path: "/nonexistent/binary"},
	}, BatchOptions{Jobs: 4})
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("valid path errs: %v %v", results[0].Err, results[1].Err)
	}
	if results[0].Result != results[1].Result {
		t.Error("same-path duplicates did not share one analysis")
	}
	if results[2].Err == nil || results[3].Err == nil {
		t.Fatal("missing path did not fail")
	}
	if results[2].Err != results[3].Err {
		t.Error("duplicate failures did not share one error")
	}
}
