package fetch

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"fetch/internal/elfx"
	"fetch/internal/synth"
)

// hugeTextMiB resolves the size of the benchmark binary's padded text:
// 64 MiB by default (the "binary bigger than any reasonable budget"
// regime), overridable via FETCH_HUGE_TEXT_MIB so the CI smoke run can
// exercise the same assertions at a fraction of the cost.
func hugeTextMiB(tb testing.TB) int {
	mib := 64
	if v := os.Getenv("FETCH_HUGE_TEXT_MIB"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			tb.Fatalf("bad FETCH_HUGE_TEXT_MIB=%q", v)
		}
		mib = n
	}
	return mib
}

// writeHugeBinary synthesizes a binary whose text is padded to
// ~textMiB MiB with a zero-filled executable section, serializes it to
// a temp file, and returns the path plus the total executable byte
// count. The padding carries no FDEs, so a budget-aware analysis must
// leave it on disk; every dense per-text-byte structure the pipeline
// ever grows back will blow the benchmark's ceiling.
func writeHugeBinary(tb testing.TB, textMiB int) (string, int64) {
	tb.Helper()
	cfg := synth.DefaultConfig("hugebench", 1, synth.O2, synth.GCC, synth.LangC)
	cfg.NumFuncs = 60
	im, _, err := synth.Generate(cfg)
	if err != nil {
		tb.Fatalf("synth.Generate: %v", err)
	}
	im = im.Strip()
	im.Sections = append([]*elfx.Section(nil), im.Sections...)
	var top uint64
	for _, s := range im.Sections {
		if s.End() > top {
			top = s.End()
		}
	}
	im.Sections = append(im.Sections, &elfx.Section{
		Name:  ".text.pad",
		Addr:  (top + 0xFFF) &^ 0xFFF,
		Data:  make([]byte, textMiB<<20),
		Flags: elfx.FlagAlloc | elfx.FlagExec,
	})
	raw, err := elfx.WriteELF(im)
	if err != nil {
		tb.Fatalf("WriteELF: %v", err)
	}
	dir, err := os.MkdirTemp("", "fetch-hugebench-*")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { os.RemoveAll(dir) })
	path := filepath.Join(dir, "huge.elf")
	if err := os.WriteFile(path, raw, 0o755); err != nil {
		tb.Fatal(err)
	}
	var textBytes int64
	for _, s := range im.Sections {
		if s.Flags&elfx.FlagExec != 0 {
			textBytes += int64(s.Size())
		}
	}
	return path, textBytes
}

// hugePeakCeiling is the enforced memory budget of the huge-binary
// benchmark, in peak bytes per byte of executable text. The file-backed
// path holds no dense per-text-byte array — the decode cache is
// per-reachable-instruction, the owner index allocates 256 KiB chunks
// only where coverage lands, the image serves sections from mmap — so
// an analysis of mostly-cold text sits far below this. Any dense
// allocation regression (owner index back to one int32 per byte is
// ratio 4.0, a materialized text copy is ratio 1.0) fails the run
// outright.
const hugePeakCeiling = 0.125

// BenchmarkHugeBinary analyzes a synthesized binary with ≥64 MiB of
// executable text (FETCH_HUGE_TEXT_MIB overrides) through the
// file-backed path and FAILS — not logs — when the analysis's
// accounted peak memory exceeds hugePeakCeiling bytes per text byte.
// Snapshot: go test -run '^$' -bench '^BenchmarkHugeBinary$'
// -benchtime 3x . | benchsnap > BENCH_9.json
func BenchmarkHugeBinary(b *testing.B) {
	path, textBytes := writeHugeBinary(b, hugeTextMiB(b))

	// One-time identity check: the file-backed result must be
	// codec-byte-identical to the buffered result (the oracle sweeps
	// this across strategies; the benchmark pins it at this size).
	raw, err := os.ReadFile(path)
	if err != nil {
		b.Fatal(err)
	}
	buffered, err := Analyze(raw)
	if err != nil {
		b.Fatalf("buffered analyze: %v", err)
	}
	raw = nil
	fileBacked, err := AnalyzeFile(path)
	if err != nil {
		b.Fatalf("file-backed analyze: %v", err)
	}
	bufEnc, err := EncodeResult(StripSchedule(buffered))
	if err != nil {
		b.Fatal(err)
	}
	fileEnc, err := EncodeResult(StripSchedule(fileBacked))
	if err != nil {
		b.Fatal(err)
	}
	if !bytes.Equal(bufEnc, fileEnc) {
		b.Fatal("file-backed result encoding differs from buffered at huge-binary size")
	}

	b.SetBytes(textBytes)
	b.ResetTimer()
	var lastRatio float64
	for i := 0; i < b.N; i++ {
		res, err := AnalyzeFile(path)
		if err != nil {
			b.Fatalf("AnalyzeFile: %v", err)
		}
		peak := res.Stats.PeakImageBytes + res.Stats.PeakAuxBytes
		lastRatio = float64(peak) / float64(textBytes)
		if lastRatio > hugePeakCeiling {
			b.Fatalf("peak memory %d bytes for %d text bytes (%.4f per text byte) exceeds the %.3f ceiling",
				peak, textBytes, lastRatio, hugePeakCeiling)
		}
	}
	b.ReportMetric(lastRatio, "peak-bytes/text-byte")
}

// TestHugeBinaryBudget is the test-mode twin of BenchmarkHugeBinary so
// the ceiling is enforced by plain `go test` runs too, at smoke size
// unless FETCH_HUGE_TEXT_MIB asks for more.
func TestHugeBinaryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("huge-binary budget check skipped in -short")
	}
	mib := 8
	if v := os.Getenv("FETCH_HUGE_TEXT_MIB"); v != "" {
		mib = hugeTextMiB(t)
	}
	path, textBytes := writeHugeBinary(t, mib)
	res, err := AnalyzeFile(path)
	if err != nil {
		t.Fatalf("AnalyzeFile: %v", err)
	}
	peak := res.Stats.PeakImageBytes + res.Stats.PeakAuxBytes
	if ratio := float64(peak) / float64(textBytes); ratio > hugePeakCeiling {
		t.Fatalf("peak memory %d bytes for %d text bytes (%.4f per text byte) exceeds the %.3f ceiling",
			peak, textBytes, ratio, hugePeakCeiling)
	}
}
