package fetch

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"fetch/internal/elfx"
	"fetch/internal/synth"
)

// deltaPair builds a base binary and its "next build": the same
// program with two functions perturbed in place, the recompilation
// shape the delta tier serves. Results are cached per test binary
// name via sync.Once holders below — generation is the expensive part
// of every test here.
var (
	deltaPairOnce sync.Once
	deltaBaseRaw  []byte
	deltaNextRaw  []byte
	deltaColdEnc  []byte
	deltaNumFuncs int
)

func deltaPair(t *testing.T) (baseRaw, nextRaw, coldEnc []byte) {
	t.Helper()
	deltaPairOnce.Do(func() {
		cfg := synth.DefaultConfig("delta-cache", 32718, synth.O2, synth.GCC, synth.LangC)
		cfg.NumFuncs = 200
		deltaNumFuncs = cfg.NumFuncs
		baseImg, _, err := synth.Generate(cfg)
		if err != nil {
			panic(err)
		}
		if deltaBaseRaw, err = elfx.WriteELF(baseImg.Strip()); err != nil {
			panic(err)
		}
		next := cfg
		next.PerturbK = 2
		next.PerturbSeed = 0xC0DE
		nextImg, _, err := synth.Generate(next)
		if err != nil {
			panic(err)
		}
		if deltaNextRaw, err = elfx.WriteELF(nextImg.Strip()); err != nil {
			panic(err)
		}
		cold, err := Analyze(deltaNextRaw)
		if err != nil {
			panic(err)
		}
		if deltaColdEnc, err = EncodeResult(StripSchedule(cold)); err != nil {
			panic(err)
		}
	})
	return deltaBaseRaw, deltaNextRaw, deltaColdEnc
}

// deltaDiskCache returns a disk-backed cache sized for the pair's
// function tier (one entry per FDE range; an undersized LRU evicts the
// base build's trace before the next build arrives).
func deltaDiskCache(t *testing.T, dir string) *Cache {
	t.Helper()
	cache, err := NewCache(CacheConfig{MaxEntries: 3 * deltaNumFuncs, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return cache
}

// deltaTierFiles globs the on-disk entries of one delta-tier family:
// "fn" for function ranges, "mf" for manifests.
func deltaTierFiles(t *testing.T, dir, family string) []string {
	t.Helper()
	all, err := filepath.Glob(filepath.Join(dir, "*.rc"))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range all {
		base := filepath.Base(e)
		switch family {
		case "fn":
			if strings.Contains(base, "-fn-") {
				out = append(out, e)
			}
		case "mf":
			if strings.Contains(base, "-mf.") {
				out = append(out, e)
			}
		}
	}
	if len(out) == 0 {
		t.Fatalf("no %q entries in %s", family, dir)
	}
	return out
}

// TestDeltaFnTierCorruption mirrors the whole-binary corruption test
// for the function tier: after the base build's trace is on disk, each
// subtest damages the delta-tier entries a different way and analyzes
// the next build through a fresh cache over the same directory. The
// contract is "miss, never wrong hit": a damaged tier may cost the
// delta path (fallback to the cold pipeline) but the served result
// must stay byte-identical to a cold analysis in every case.
func TestDeltaFnTierCorruption(t *testing.T) {
	baseRaw, nextRaw, coldEnc := deltaPair(t)

	corruptions := []struct {
		name    string
		family  string
		corrupt func(t *testing.T, path string)
		// wantDelta: the damage must NOT cost the delta path (control).
		wantDelta bool
	}{
		{name: "intact-control", family: "fn",
			corrupt: func(t *testing.T, path string) {}, wantDelta: true},
		{name: "fn-truncated", family: "fn",
			corrupt: func(t *testing.T, path string) {
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
					t.Fatal(err)
				}
			}},
		{name: "fn-flipped-byte", family: "fn",
			corrupt: func(t *testing.T, path string) {
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				raw[len(raw)-1] ^= 0xFF
				if err := os.WriteFile(path, raw, 0o644); err != nil {
					t.Fatal(err)
				}
			}},
		{name: "fn-partial-write", family: "fn",
			corrupt: func(t *testing.T, path string) {
				// An interrupted non-atomic writer: the header begins but
				// the payload never lands.
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				n := 16
				if n > len(raw) {
					n = len(raw)
				}
				if err := os.WriteFile(path, raw[:n], 0o644); err != nil {
					t.Fatal(err)
				}
			}},
		{name: "mf-truncated", family: "mf",
			corrupt: func(t *testing.T, path string) {
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
					t.Fatal(err)
				}
			}},
		{name: "mf-flipped-byte", family: "mf",
			corrupt: func(t *testing.T, path string) {
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				raw[len(raw)/2] ^= 0x01
				if err := os.WriteFile(path, raw, 0o644); err != nil {
					t.Fatal(err)
				}
			}},
	}

	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c1 := deltaDiskCache(t, dir)
			if _, err := Analyze(baseRaw, WithCache(c1)); err != nil {
				t.Fatal(err)
			}
			for _, f := range deltaTierFiles(t, dir, tc.family) {
				tc.corrupt(t, f)
			}

			// A fresh cache over the same directory: cold memory level,
			// so every delta-tier read goes through the damaged files.
			c2 := deltaDiskCache(t, dir)
			res, err := Analyze(nextRaw, WithCache(c2))
			if err != nil {
				t.Fatal(err)
			}
			enc, err := EncodeResult(StripSchedule(res))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, coldEnc) {
				t.Fatal("served result differs from cold analysis")
			}
			st := c2.Stats()
			if tc.wantDelta {
				if !res.Stats.DeltaPath {
					t.Fatalf("control run not delta-served (reason %q)",
						res.Stats.DeltaFallbackReason)
				}
				if st.DeltaHits != 1 {
					t.Fatalf("control counters: %+v", st)
				}
				return
			}
			if res.Stats.DeltaPath {
				t.Fatal("delta path survived corrupted tier entries")
			}
			// Disk-level integrity catches every mode here; the damaged
			// entries must be dropped, never decoded.
			if st.CorruptDrops == 0 {
				t.Fatalf("no corrupt drops recorded: %+v", st)
			}
			if st.DeltaHits != 0 {
				t.Fatalf("delta hit off corrupted entries: %+v", st)
			}
		})
	}
}

// TestDeltaFnTierMemoryCorruption damages a function-tier payload
// after it has been served into the memory level, where the disk
// header check cannot help — fnRangeBytes's own payload↔key binding is
// the only defense. The next build must fall back, never replay
// against wrong bytes.
func TestDeltaFnTierMemoryCorruption(t *testing.T) {
	baseRaw, nextRaw, coldEnc := deltaPair(t)
	dir := t.TempDir()
	c1 := deltaDiskCache(t, dir)
	if _, err := Analyze(baseRaw, WithCache(c1)); err != nil {
		t.Fatal(err)
	}
	// Rewrite every fn file as a VALID disk entry whose payload no
	// longer matches the key in its name: rotate the file contents, so
	// each file passes any self-contained header check yet carries a
	// neighboring key's payload. Rotating ALL entries guarantees every
	// range the replay reads is mismatched.
	files := deltaTierFiles(t, dir, "fn")
	if len(files) < 2 {
		t.Skip("need two fn entries to rotate")
	}
	contents := make([][]byte, len(files))
	for i, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		contents[i] = raw
	}
	for i, f := range files {
		if err := os.WriteFile(f, contents[(i+1)%len(files)], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	c2 := deltaDiskCache(t, dir)
	res, err := Analyze(nextRaw, WithCache(c2))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeResult(StripSchedule(res))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, coldEnc) {
		t.Fatal("served result differs from cold analysis after key/payload rotation")
	}
	if res.Stats.DeltaPath {
		t.Fatal("delta path survived a fully mismatched function tier")
	}
	st := c2.Stats()
	if st.DeltaHits != 0 {
		t.Fatalf("delta hit off mismatched entries: %+v", st)
	}
	// Every consumed payload must have been rejected at some layer —
	// either the disk store's key check or fnRangeBytes's binding check.
	if st.FnTierMisses == 0 && st.CorruptDrops == 0 {
		t.Fatalf("mismatched payloads never rejected: %+v", st)
	}
}

// TestDeltaConcurrentAnalyses drives base and next builds through one
// shared cache from many goroutines (run under -race): concurrent
// trace recording, delta replay, and whole-binary hits must neither
// race nor ever serve a result differing from cold analysis.
func TestDeltaConcurrentAnalyses(t *testing.T) {
	baseRaw, nextRaw, coldEnc := deltaPair(t)
	baseCold, err := Analyze(baseRaw)
	if err != nil {
		t.Fatal(err)
	}
	baseEnc, err := EncodeResult(StripSchedule(baseCold))
	if err != nil {
		t.Fatal(err)
	}

	cache, err := NewCache(CacheConfig{MaxEntries: 3 * deltaNumFuncs, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Half the workers race base-build recording against the
			// other half's next-build delta attempts.
			raw, want := baseRaw, baseEnc
			if w%2 == 1 {
				raw, want = nextRaw, coldEnc
			}
			for i := 0; i < 3; i++ {
				res, err := Analyze(raw, WithCache(cache))
				if err != nil {
					errs <- err
					return
				}
				enc, err := EncodeResult(StripSchedule(res))
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(enc, want) {
					errs <- errResultMismatch
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errResultMismatch = errorString("concurrent analysis differs from cold result")

type errorString string

func (e errorString) Error() string { return string(e) }
