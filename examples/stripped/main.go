// Stripped-binary walkthrough: write a stripped sample ELF to disk,
// analyze it from the file as an end user would, and show how each
// pipeline stage contributes — comparing FDE-only extraction against
// the full pipeline.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"fetch"
)

func main() {
	raw, truth, err := fetch.GenerateSample(fetch.SampleConfig{
		Seed:     7,
		NumFuncs: 150,
		Opt:      "O3",
		Compiler: "gcc",
		Lang:     "c++",
		Stripped: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "fetch-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "stripped-sample")
	if err := os.WriteFile(path, raw, 0o755); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes, no symbols)\n", path, len(raw))

	truthSet := map[uint64]bool{}
	for _, a := range truth.FunctionStarts {
		truthSet[a] = true
	}
	score := func(label string, starts []uint64) {
		var fp, fn int
		det := map[uint64]bool{}
		for _, a := range starts {
			det[a] = true
			if !truthSet[a] {
				fp++
			}
		}
		for _, a := range truth.FunctionStarts {
			if !det[a] {
				fn++
			}
		}
		fmt.Printf("%-22s %5d starts   FP %3d   FN %3d\n", label, len(starts), fp, fn)
	}

	fdeOnly, err := fetch.AnalyzeFile(path, fetch.FDEOnly())
	if err != nil {
		log.Fatal(err)
	}
	score("FDE extraction only", fdeOnly.FunctionStarts)

	noFix, err := fetch.AnalyzeFile(path, fetch.WithoutTailCall())
	if err != nil {
		log.Fatal(err)
	}
	score("FDE+Rec+Xref", noFix.FunctionStarts)

	full, err := fetch.AnalyzeFile(path)
	if err != nil {
		log.Fatal(err)
	}
	score("full FETCH pipeline", full.FunctionStarts)

	fmt.Printf("\nAlgorithm 1 merged %d non-contiguous parts", len(full.MergedParts))
	if full.SkippedIncompleteCFI > 0 {
		fmt.Printf(" and skipped %d functions with incomplete CFI", full.SkippedIncompleteCFI)
	}
	fmt.Println(".")
}
