// CFI impact demo (§V-A of the paper): a control-flow-integrity policy
// that admits every detected "function start" as an indirect-branch
// target inherits the FDE-introduced false starts — and the ROP gadgets
// reachable from them. This example quantifies the attack surface
// FETCH's Algorithm 1 removes.
package main

import (
	"fmt"
	"log"

	"fetch/internal/core"
	"fetch/internal/gadget"
	"fetch/internal/synth"
)

func main() {
	cfg := synth.DefaultConfig("cfi-demo", 11, synth.Ofast, synth.GCC, synth.LangCPP)
	cfg.NumFuncs = 200
	cfg.NonContigRate = 0.08 // hot/cold splitting at aggressive optimization
	img, truth, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	img = img.Strip()

	naive, err := core.Analyze(img, core.Strategy{Recursive: true, Xref: true})
	if err != nil {
		log.Fatal(err)
	}
	fixed, err := core.Analyze(img, core.FETCH)
	if err != nil {
		log.Fatal(err)
	}

	falseTargets := func(funcs map[uint64]bool) []uint64 {
		var out []uint64
		for a := range funcs {
			if !truth.IsStart(a) {
				out = append(out, a)
			}
		}
		return out
	}

	naiveFPs := falseTargets(naive.Funcs)
	fixedFPs := falseTargets(fixed.Funcs)

	fmt.Printf("binary: %d true functions, %d non-contiguous parts\n",
		len(truth.Funcs), len(truth.Parts))
	fmt.Println("\nCFI policy admitting every detected start as an indirect-branch target:")
	fmt.Printf("  trusting FDEs blindly:  %3d false targets, %4d reachable ROP gadgets\n",
		len(naiveFPs), gadget.CountAll(img, naiveFPs))
	fmt.Printf("  after Algorithm 1:      %3d false targets, %4d reachable ROP gadgets\n",
		len(fixedFPs), gadget.CountAll(img, fixedFPs))
	fmt.Printf("\nAlgorithm 1 merged %d per-part FDEs back into their owners.\n",
		len(fixed.Merged))
}
