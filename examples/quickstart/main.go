// Quickstart: generate a sample x64 ELF binary with known ground truth
// and run the full FETCH pipeline on it, comparing the detection
// against the truth.
package main

import (
	"fmt"
	"log"

	"fetch"
)

func main() {
	// Generate a realistic sample binary: 120 functions, jump tables,
	// tail calls, non-contiguous functions, a full .eh_frame.
	raw, truth, err := fetch.GenerateSample(fetch.SampleConfig{
		Seed:     42,
		Stripped: true, // symbols removed, as shipped binaries are
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sample binary: %d bytes, %d true functions, %d non-contiguous parts\n",
		len(raw), len(truth.FunctionStarts), len(truth.PartStarts))

	// Analyze. The pipeline uses only exception-handling information
	// and safe analyses — no symbols, no pattern matching.
	res, err := fetch.Analyze(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected:      %d starts (%d raw FDEs, %d parts merged back)\n",
		len(res.FunctionStarts), len(res.FDEStarts), len(res.MergedParts))

	// Score against the ground truth.
	detected := make(map[uint64]bool, len(res.FunctionStarts))
	for _, a := range res.FunctionStarts {
		detected[a] = true
	}
	var fp, fn int
	truthSet := make(map[uint64]bool, len(truth.FunctionStarts))
	for _, a := range truth.FunctionStarts {
		truthSet[a] = true
		if !detected[a] {
			fn++
			fmt.Printf("  missed:   %#x (%s)\n", a, truth.Names[a])
		}
	}
	for _, a := range res.FunctionStarts {
		if !truthSet[a] {
			fp++
			fmt.Printf("  spurious: %#x (%s)\n", a, truth.Names[a])
		}
	}
	fmt.Printf("false positives: %d, false negatives: %d\n", fp, fn)
}
