// Non-contiguous function deep dive: shows the raw .eh_frame view of a
// hot/cold-split function (one FDE per part, like paper Figure 6a), the
// CFI-recorded stack heights that prove the connecting jump is not a
// tail call, and Algorithm 1's merge decision.
package main

import (
	"fmt"
	"log"

	"fetch/internal/arch"
	"fetch/internal/core"
	"fetch/internal/ehframe"
	"fetch/internal/synth"
)

func main() {
	cfg := synth.DefaultConfig("noncontig-demo", 5, synth.O2, synth.GCC, synth.LangC)
	cfg.NonContigRate = 0.3
	img, truth, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	eh, _ := img.Section(".eh_frame")
	sec, err := ehframe.Decode(eh.Bytes(), eh.Addr)
	if err != nil {
		log.Fatal(err)
	}

	// Pick a mergeable (complete-CFI) part.
	var part *struct {
		addr, parent uint64
		name         string
	}
	for _, p := range truth.Parts {
		if !p.IncompleteCFI {
			part = &struct {
				addr, parent uint64
				name         string
			}{p.Addr, p.Parent, p.Name}
			break
		}
	}
	if part == nil {
		log.Fatal("no mergeable part in this sample")
	}

	parentFDE, _ := sec.FDEStartingAt(part.parent)
	partFDE, _ := sec.FDEStartingAt(part.addr)
	fmt.Printf("non-contiguous function %q:\n", part.name)
	fmt.Printf("  hot part  FDE: [%#x, %#x)\n", parentFDE.PCBegin, parentFDE.End())
	fmt.Printf("  cold part FDE: [%#x, %#x)  <- a false function start\n", partFDE.PCBegin, partFDE.End())

	// Find the connecting jump and its CFI-recorded stack height.
	isa := img.ISA()
	heights := parentFDE.HeightsABI(isa.CFISPReg(), isa.CFIEntryOffset())
	fmt.Printf("  parent CFI heights complete: %v\n", heights.Complete)
	addr := parentFDE.PCBegin
	for addr < parentFDE.End() {
		w, ok := img.BytesToSectionEnd(addr)
		if !ok {
			break
		}
		in, err := img.ISA().Decode(w, addr)
		if err != nil {
			break
		}
		if (in.Op == arch.OpJcc || in.Op == arch.OpJmp) && in.HasTarget && in.Target == part.addr {
			h, _ := heights.HeightAt(in.Addr)
			fmt.Printf("  connecting jump at %#x, stack height %d bytes\n", in.Addr, h)
			if h != 0 {
				fmt.Println("  -> height != 0: cannot be a tail call (the target could")
				fmt.Println("     not return to the caller's caller); same function.")
			} else {
				fmt.Println("  -> height == 0 but the target has no other reference;")
				fmt.Println("     Algorithm 1 still merges it.")
			}
		}
		addr = in.Next()
	}

	rep, err := core.Analyze(img.Strip(), core.FETCH)
	if err != nil {
		log.Fatal(err)
	}
	if owner, ok := rep.Merged[part.addr]; ok {
		fmt.Printf("  Algorithm 1 merged %#x into %#x ✓\n", part.addr, owner)
	} else {
		fmt.Printf("  part %#x not merged (unexpected)\n", part.addr)
	}
	fmt.Printf("\npipeline summary: %d FDE starts, %d merged, %d residual incomplete-CFI skips\n",
		len(rep.FDEStarts), len(rep.Merged), rep.SkippedIncomplete)
}
