// Command service demonstrates the fetchd HTTP API end to end,
// in-process: it starts the fetchd service over an httptest listener,
// uploads a generated sample binary, re-fetches the result by content
// hash, and reads back the cache counters — the same request sequence
// docs/API.md walks through with curl.
package main

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"fetch"
	"fetch/internal/service"
)

func main() {
	// A memory-only cache; pass Dir to persist results across runs.
	cache, err := fetch.NewCache(fetch.CacheConfig{MaxEntries: 256})
	if err != nil {
		log.Fatal(err)
	}
	svc, err := service.New(service.Config{Cache: cache, MaxInFlight: 2})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	fmt.Println("fetchd serving on", ts.URL)

	// A sample binary with known ground truth stands in for a real
	// upload.
	bin, _, err := fetch.GenerateSample(fetch.SampleConfig{Seed: 1, Stripped: true})
	if err != nil {
		log.Fatal(err)
	}
	sum := fetch.HashBinary(bin)
	hexSum := hex.EncodeToString(sum[:])

	// POST /v1/analyze twice: a cold analysis, then a cache hit.
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/octet-stream", bytes.NewReader(bin))
		if err != nil {
			log.Fatal(err)
		}
		var ar struct {
			SHA256 string          `json:"sha256"`
			Cached bool            `json:"cached"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		res, err := fetch.DecodeResult(ar.Result)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("analyze #%d: cached=%v starts=%d sha256=%s...\n",
			i+1, ar.Cached, len(res.FunctionStarts), ar.SHA256[:12])
	}

	// GET /v1/result/{sha256}: by-hash retrieval, no binary needed.
	resp, err := http.Get(ts.URL + "/v1/result/" + hexSum)
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Println("by-hash GET:", resp.Status)

	// GET /v1/stats: hit/miss/latency counters.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	var st service.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("stats: analyze requests=%d hits=%d misses=%d; cache entries=%d\n",
		st.Analyze.Requests, st.Analyze.CacheHits, st.Analyze.CacheMisses, st.Cache.Entries)
}
