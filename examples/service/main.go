// Command service demonstrates the fetchd HTTP API end to end,
// in-process: it starts the fetchd service over an httptest listener,
// uploads a generated sample binary, re-fetches the result by content
// hash, submits an asynchronous job and polls it to completion,
// scrapes /metrics, and reads back the cache counters — the same
// request sequence docs/API.md walks through with curl.
package main

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"fetch"
	"fetch/internal/service"
)

func main() {
	// A memory-only cache; pass Dir to persist results across runs.
	cache, err := fetch.NewCache(fetch.CacheConfig{MaxEntries: 256})
	if err != nil {
		log.Fatal(err)
	}
	svc, err := service.New(service.Config{Cache: cache, MaxInFlight: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	fmt.Println("fetchd serving on", ts.URL)

	// A sample binary with known ground truth stands in for a real
	// upload.
	bin, _, err := fetch.GenerateSample(fetch.SampleConfig{Seed: 1, Stripped: true})
	if err != nil {
		log.Fatal(err)
	}
	sum := fetch.HashBinary(bin)
	hexSum := hex.EncodeToString(sum[:])

	// POST /v1/analyze twice: a cold analysis, then a cache hit.
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/octet-stream", bytes.NewReader(bin))
		if err != nil {
			log.Fatal(err)
		}
		var ar struct {
			SHA256 string          `json:"sha256"`
			Cached bool            `json:"cached"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		res, err := fetch.DecodeResult(ar.Result)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("analyze #%d: cached=%v starts=%d sha256=%s...\n",
			i+1, ar.Cached, len(res.FunctionStarts), ar.SHA256[:12])
	}

	// GET /v1/result/{sha256}: by-hash retrieval, no binary needed.
	resp, err := http.Get(ts.URL + "/v1/result/" + hexSum)
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Println("by-hash GET:", resp.Status)

	// POST /v1/jobs + GET /v1/jobs/{id}: async submit and poll. A
	// fresh strategy variant forces a cold analysis so the job does
	// real work.
	resp, err = http.Post(ts.URL+"/v1/jobs?fde_only=1", "application/octet-stream", bytes.NewReader(bin))
	if err != nil {
		log.Fatal(err)
	}
	var jr struct {
		JobID string `json:"job_id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("job submit: %s id=%s state=%s\n", resp.Status, jr.JobID, jr.State)
	for jr.State != "done" && jr.State != "failed" {
		time.Sleep(10 * time.Millisecond)
		resp, err = http.Get(ts.URL + "/v1/jobs/" + jr.JobID)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
	}
	fmt.Printf("job poll: state=%s error=%q\n", jr.State, jr.Error)

	// GET /metrics: Prometheus text exposition from the same atomics
	// as /v1/stats.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	scrape, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	for _, line := range strings.Split(string(scrape), "\n") {
		if strings.HasPrefix(line, "fetchd_analyze_") && !strings.Contains(line, "_bucket") {
			fmt.Println("metrics:", line)
		}
	}

	// GET /v1/stats: hit/miss/latency counters.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	var st service.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("stats: analyze requests=%d hits=%d misses=%d; jobs completed=%d; cache entries=%d\n",
		st.Analyze.Requests, st.Analyze.CacheHits, st.Analyze.CacheMisses,
		st.Jobs.Completed, st.Cache.Entries)
}
