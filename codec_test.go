package fetch

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// codecSample produces a deterministic analyzed Result: a generated
// binary with every correction class populated, wall times zeroed
// (the single non-deterministic field family).
func codecSample(t testing.TB) *Result {
	t.Helper()
	raw, _, err := GenerateSample(SampleConfig{Seed: 42, NumFuncs: 120, Stripped: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(raw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Stats.Passes {
		res.Stats.Passes[i].Wall = 0
	}
	return res
}

func TestCodecRoundTripExact(t *testing.T) {
	res := codecSample(t)
	blob, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResult(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Fatalf("round trip not exact:\n got %+v\nwant %+v", back, res)
	}
	// Determinism: encoding the decoded copy reproduces the bytes.
	blob2, err := EncodeResult(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("re-encoding is not byte-identical")
	}
}

// TestCodecRoundTripPreservesNilVersusEmpty pins the subtlest part of
// the exactness contract: null and [] are different values.
func TestCodecRoundTripPreservesNilVersusEmpty(t *testing.T) {
	cases := []*Result{
		{}, // all nil
		{
			FunctionStarts: []uint64{},
			MergedParts:    map[uint64]uint64{},
			Stats:          Stats{Passes: []PassStat{}},
		},
		{
			FunctionStarts: []uint64{0x401000, 1<<64 - 1},
			MergedParts:    map[uint64]uint64{0x1000: 0x2000, 1<<63 + 5: 7},
			Stats: Stats{
				Passes:        []PassStat{{Name: "fde", Wall: 123 * time.Microsecond}},
				XrefConverged: true,
			},
		},
	}
	for i, res := range cases {
		blob, err := EncodeResult(res)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		back, err := DecodeResult(blob)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(res, back) {
			t.Fatalf("case %d: round trip changed value:\n got %#v\nwant %#v", i, back, res)
		}
	}
}

func TestDecodeRejectsWrongSchemaAndUnknownFields(t *testing.T) {
	res := codecSample(t)
	blob, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}

	wrongSchema := strings.Replace(string(blob), `"schema": 4`, `"schema": 999`, 1)
	if _, err := DecodeResult([]byte(wrongSchema)); err == nil ||
		!strings.Contains(err.Error(), "schema version") {
		t.Fatalf("wrong schema: %v", err)
	}

	unknown := strings.Replace(string(blob), `"schema": 4`, `"schema": 4, "surprise": 1`, 1)
	if _, err := DecodeResult([]byte(unknown)); err == nil {
		t.Fatal("unknown field accepted")
	}

	if _, err := DecodeResult([]byte("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	// Trailing data is rejected whichever layer sees it first (the
	// schema probe's strict Unmarshal or the post-decode EOF check).
	trailing := append(append([]byte(nil), blob...), []byte(`{"schema": 4}`)...)
	if _, err := DecodeResult(trailing); err == nil {
		t.Fatal("concatenated documents accepted")
	}
	if _, err := DecodeResult([]byte(`{"schema": 4, "fde_starts": ["zz"]}`)); err == nil {
		t.Fatal("malformed address accepted")
	}
}

// TestCodecGolden pins the serialized schema byte-for-byte: any codec
// change that alters the wire form fails here and must come with a
// ResultSchemaVersion bump plus a docs/API.md update. Refresh with
// go test -run TestCodecGolden -update ./...
func TestCodecGolden(t *testing.T) {
	res := codecSample(t)
	blob, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "result_v4.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if string(blob) != string(want) {
		t.Fatalf("encoding drifted from %s; if intentional, bump ResultSchemaVersion, update docs/API.md, and refresh with -update", golden)
	}
	back, err := DecodeResult(want)
	if err != nil {
		t.Fatalf("golden does not decode: %v", err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Fatal("golden decodes to a different result")
	}
}

// TestSummaryNamesMatchSchema enforces the no-drift contract between
// the CLI's formatting helper and the JSON codec: every non-derived
// SummaryLine name must resolve to a path in the encoded document.
func TestSummaryNamesMatchSchema(t *testing.T) {
	res := codecSample(t)
	blob, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatal(err)
	}
	resolve := func(path string) bool {
		cur := any(doc)
		for _, seg := range strings.Split(path, ".") {
			switch node := cur.(type) {
			case map[string]any:
				next, ok := node[seg]
				if !ok {
					return false
				}
				cur = next
			case []any:
				// A segment under an array names an element by its
				// "name" field (the passes list).
				var found any
				for _, el := range node {
					if m, ok := el.(map[string]any); ok && m["name"] == seg {
						found = m
						break
					}
				}
				if found == nil {
					return false
				}
				cur = found
			default:
				return false
			}
		}
		return true
	}
	for _, line := range Summarize(res, true) {
		if strings.HasPrefix(line.Name, "derived.") {
			continue
		}
		if !resolve(line.Name) {
			t.Errorf("summary line %q has no corresponding schema path", line.Name)
		}
	}
}
