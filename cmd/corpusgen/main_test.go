package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fetch"
)

func TestRunProfilePresets(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder
	err := run([]string{"-out", dir, "-profile", "pie,cfi-stress", "-seed", "9", "-jobs", "2"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	if !strings.Contains(out.String(), "wrote 2 binaries") {
		t.Errorf("unexpected summary: %s", out.String())
	}
	// Each profile yields an analyzable ELF plus ground truth whose
	// starts the analysis actually finds (smoke-level agreement).
	for _, name := range []string{"adv-pie", "adv-cfi-stress"} {
		bin := filepath.Join(dir, name)
		res, err := fetch.AnalyzeFile(bin)
		if err != nil {
			t.Fatalf("analyze %s: %v", name, err)
		}
		blob, err := os.ReadFile(bin + ".truth.json")
		if err != nil {
			t.Fatal(err)
		}
		var tj struct {
			Binary        string   `json:"binary"`
			FunctionStart []uint64 `json:"function_starts"`
			OverlapFDEs   []uint64 `json:"overlap_fdes"`
		}
		if err := json.Unmarshal(blob, &tj); err != nil {
			t.Fatal(err)
		}
		if tj.Binary != name || len(tj.FunctionStart) == 0 {
			t.Fatalf("%s: bad truth file: %+v", name, tj)
		}
		detected := map[uint64]bool{}
		for _, a := range res.FunctionStarts {
			detected[a] = true
		}
		found := 0
		for _, a := range tj.FunctionStart {
			if detected[a] {
				found++
			}
		}
		if found*10 < len(tj.FunctionStart)*9 {
			t.Errorf("%s: only %d/%d true starts detected", name, found, len(tj.FunctionStart))
		}
		if name == "adv-cfi-stress" && len(tj.OverlapFDEs) == 0 {
			t.Error("cfi-stress truth records no overlap FDEs")
		}
	}
}

// TestRunProfileSeedSubsetIndependent pins reproducibility: a profile
// generated alone must be byte-identical to the same profile generated
// as part of -profile all with the same -seed.
func TestRunProfileSeedSubsetIndependent(t *testing.T) {
	all, solo := t.TempDir(), t.TempDir()
	var out, errOut strings.Builder
	if err := run([]string{"-out", all, "-profile", "all", "-seed", "9"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-out", solo, "-profile", "icf", "-seed", "9"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(all, "adv-icf"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(solo, "adv-icf"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("adv-icf differs between -profile all and -profile icf at the same seed")
	}
}

func TestRunProfileErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-out", t.TempDir(), "-profile", "bogus"}, &out, &errOut); err == nil {
		t.Error("unknown profile accepted")
	}
	if err := run([]string{"-out", t.TempDir(), "-profile", "pie", "-wild"}, &out, &errOut); err == nil {
		t.Error("-wild with -profile accepted")
	}
	if err := run([]string{"-out", t.TempDir(), "-profile", " , "}, &out, &errOut); err == nil {
		t.Error("empty profile list accepted")
	}
	if err := run([]string{"-out", t.TempDir(), "-profile", "pie,pie"}, &out, &errOut); err == nil {
		t.Error("duplicate profile accepted — items would clobber the same output path")
	}
}
