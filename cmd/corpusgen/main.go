// Command corpusgen materializes the synthetic evaluation corpora as
// real ELF files plus JSON ground truth, for use with external tools.
//
// Usage:
//
//	corpusgen [-out DIR] [-scale F] [-seed N] [-jobs N] [-wild]
//
// Generation fans out over -jobs workers (0 = one per CPU); output is
// byte-identical to a sequential run. A failing item does not stop the
// others: corpusgen writes what it can, prints a per-item error
// summary, and exits non-zero when anything failed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fetch/internal/elfx"
	"fetch/internal/groundtruth"
	"fetch/internal/pool"
	"fetch/internal/synth"
)

// truthJSON is the on-disk ground-truth schema.
type truthJSON struct {
	Binary        string   `json:"binary"`
	FunctionStart []uint64 `json:"function_starts"`
	PartStarts    []uint64 `json:"part_starts"`
	CFIErrors     []uint64 `json:"cfi_error_fdes"`
}

// item is one corpus entry to generate and write.
type item struct {
	name  string
	cfg   synth.Config
	strip bool
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "corpus", "output directory")
	scale := flag.Float64("scale", 0.05, "corpus scale in (0,1]")
	seed := flag.Int64("seed", 1, "generation seed")
	jobs := flag.Int("jobs", 0, "concurrent generation workers (0 = one per CPU)")
	wild := flag.Bool("wild", false, "generate the Table I wild set instead")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	var items []item
	if *wild {
		for _, w := range synth.WildCorpus(*seed) {
			items = append(items, item{name: w.Software, cfg: w.Config, strip: !w.HasSymbols})
		}
	} else {
		for _, sp := range synth.SelfBuiltCorpus(*scale, *seed) {
			items = append(items, item{name: sp.Config.Name, cfg: sp.Config})
		}
	}

	// Each worker generates AND writes its item (file contents are
	// per-item, so write order doesn't matter), keeping peak memory at
	// O(jobs) binaries; the error summary below still reads the
	// results in input order, so output is deterministic.
	results := pool.Map(context.Background(), *jobs, items,
		func(_ context.Context, _ int, it item) (struct{}, error) {
			img, truth, err := synth.Generate(it.cfg)
			if err != nil {
				return struct{}{}, err
			}
			if it.strip {
				img = img.Strip()
			}
			return struct{}{}, write(*out, it.name, img, truth)
		})

	n := 0
	var failed []string
	for i, r := range results {
		if r.Err != nil {
			failed = append(failed, fmt.Sprintf("  %s: %v", items[i].name, r.Err))
			continue
		}
		n++
	}
	fmt.Printf("wrote %d binaries to %s\n", n, *out)
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "corpusgen: %d of %d items failed:\n", len(failed), len(items))
		for _, line := range failed {
			fmt.Fprintln(os.Stderr, line)
		}
		return fmt.Errorf("%d of %d items failed", len(failed), len(items))
	}
	return nil
}

// write materializes one binary and its ground truth.
func write(dir, name string, img *elfx.Image, truth *groundtruth.Truth) error {
	raw, err := elfx.WriteELF(img)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, name), raw, 0o755); err != nil {
		return err
	}
	tj := truthJSON{Binary: name, FunctionStart: truth.SortedStarts()}
	for _, p := range truth.Parts {
		tj.PartStarts = append(tj.PartStarts, p.Addr)
	}
	tj.CFIErrors = append(tj.CFIErrors, truth.CFIErrorAddrs...)
	blob, err := json.MarshalIndent(&tj, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".truth.json"), blob, 0o644)
}
