// Command corpusgen materializes the synthetic evaluation corpora as
// real ELF files plus JSON ground truth, for use with external tools.
//
// Usage:
//
//	corpusgen [-out DIR] [-scale F] [-seed N] [-jobs N] [-wild]
//	corpusgen -profile LIST [-out DIR] [-seed N] [-jobs N]
//
// -profile selects adversarial shape presets (comma-separated names
// from the generator v2 profile set, or "all"): PIE, split-text, ICF
// clones, zero padding, CFI stress, and the rest. Generation fans out
// over -jobs workers (0 = one per CPU); output is byte-identical to a
// sequential run. A failing item does not stop the others: corpusgen
// writes what it can, prints a per-item error summary, and exits
// non-zero when anything failed.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"fetch/internal/elfx"
	"fetch/internal/groundtruth"
	"fetch/internal/pool"
	"fetch/internal/synth"
)

// truthJSON is the on-disk ground-truth schema.
type truthJSON struct {
	Binary        string   `json:"binary"`
	FunctionStart []uint64 `json:"function_starts"`
	PartStarts    []uint64 `json:"part_starts"`
	CFIErrors     []uint64 `json:"cfi_error_fdes"`
	OverlapFDEs   []uint64 `json:"overlap_fdes,omitempty"`
}

// item is one corpus entry to generate and write.
type item struct {
	name  string
	cfg   synth.Config
	strip bool
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

// profileItems resolves a -profile list into corpus items. Each
// profile's seed offset is its canonical index in ProfileNames(), not
// its position in the request, so `-profile icf -seed 9` reproduces
// the exact adv-icf binary that `-profile all -seed 9` wrote.
func profileItems(list string, seed int64) ([]item, error) {
	canonical := map[string]int64{}
	for k, n := range synth.ProfileNames() {
		canonical[n] = int64(k)
	}
	var names []string
	if list == "all" {
		names = synth.ProfileNames()
	} else {
		seen := map[string]bool{}
		for _, n := range strings.Split(list, ",") {
			if n = strings.TrimSpace(n); n == "" {
				continue
			}
			if seen[n] {
				// Duplicates would map to the same output path and
				// silently clobber each other.
				return nil, fmt.Errorf("duplicate profile %q", n)
			}
			seen[n] = true
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("empty -profile list (known: %s)", strings.Join(synth.ProfileNames(), ", "))
	}
	var items []item
	for _, name := range names {
		cfg, err := synth.AdversarialProfile(name, seed+canonical[name])
		if err != nil {
			return nil, err
		}
		items = append(items, item{name: cfg.Name, cfg: cfg})
	}
	return items, nil
}

func run(args []string, w, errW io.Writer) error {
	fs := flag.NewFlagSet("corpusgen", flag.ContinueOnError)
	fs.SetOutput(errW)
	out := fs.String("out", "corpus", "output directory")
	scale := fs.Float64("scale", 0.05, "corpus scale in (0,1]")
	seed := fs.Int64("seed", 1, "generation seed")
	jobs := fs.Int("jobs", 0, "concurrent generation workers (0 = one per CPU)")
	wild := fs.Bool("wild", false, "generate the Table I wild set instead")
	profile := fs.String("profile", "", `comma-separated adversarial shape profiles, or "all"`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *wild && *profile != "" {
		return errors.New("-wild and -profile are mutually exclusive")
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	var items []item
	switch {
	case *profile != "":
		var err error
		if items, err = profileItems(*profile, *seed); err != nil {
			return err
		}
	case *wild:
		for _, wl := range synth.WildCorpus(*seed) {
			items = append(items, item{name: wl.Software, cfg: wl.Config, strip: !wl.HasSymbols})
		}
	default:
		for _, sp := range synth.SelfBuiltCorpus(*scale, *seed) {
			items = append(items, item{name: sp.Config.Name, cfg: sp.Config})
		}
	}

	// Each worker generates AND writes its item (file contents are
	// per-item, so write order doesn't matter), keeping peak memory at
	// O(jobs) binaries; the error summary below still reads the
	// results in input order, so output is deterministic.
	results := pool.Map(context.Background(), *jobs, items,
		func(_ context.Context, _ int, it item) (struct{}, error) {
			img, truth, err := synth.Generate(it.cfg)
			if err != nil {
				return struct{}{}, err
			}
			if it.strip {
				img = img.Strip()
			}
			return struct{}{}, write(*out, it.name, img, truth)
		})

	n := 0
	var failed []string
	for i, r := range results {
		if r.Err != nil {
			failed = append(failed, fmt.Sprintf("  %s: %v", items[i].name, r.Err))
			continue
		}
		n++
	}
	fmt.Fprintf(w, "wrote %d binaries to %s\n", n, *out)
	if len(failed) > 0 {
		fmt.Fprintf(errW, "corpusgen: %d of %d items failed:\n", len(failed), len(items))
		for _, line := range failed {
			fmt.Fprintln(errW, line)
		}
		return fmt.Errorf("%d of %d items failed", len(failed), len(items))
	}
	return nil
}

// write materializes one binary and its ground truth.
func write(dir, name string, img *elfx.Image, truth *groundtruth.Truth) error {
	raw, err := elfx.WriteELF(img)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, name), raw, 0o755); err != nil {
		return err
	}
	tj := truthJSON{Binary: name, FunctionStart: truth.SortedStarts()}
	for _, p := range truth.Parts {
		tj.PartStarts = append(tj.PartStarts, p.Addr)
	}
	tj.CFIErrors = append(tj.CFIErrors, truth.CFIErrorAddrs...)
	tj.OverlapFDEs = append(tj.OverlapFDEs, truth.OverlapFDEAddrs...)
	blob, err := json.MarshalIndent(&tj, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".truth.json"), blob, 0o644)
}
