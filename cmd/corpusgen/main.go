// Command corpusgen materializes the synthetic evaluation corpora as
// real ELF files plus JSON ground truth, for use with external tools.
//
// Usage:
//
//	corpusgen [-out DIR] [-scale F] [-seed N] [-wild]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fetch/internal/elfx"
	"fetch/internal/groundtruth"
	"fetch/internal/synth"
)

// truthJSON is the on-disk ground-truth schema.
type truthJSON struct {
	Binary        string   `json:"binary"`
	FunctionStart []uint64 `json:"function_starts"`
	PartStarts    []uint64 `json:"part_starts"`
	CFIErrors     []uint64 `json:"cfi_error_fdes"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "corpus", "output directory")
	scale := flag.Float64("scale", 0.05, "corpus scale in (0,1]")
	seed := flag.Int64("seed", 1, "generation seed")
	wild := flag.Bool("wild", false, "generate the Table I wild set instead")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	write := func(name string, img *elfx.Image, truth *groundtruth.Truth) error {
		raw, err := elfx.WriteELF(img)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(*out, name), raw, 0o755); err != nil {
			return err
		}
		tj := truthJSON{Binary: name, FunctionStart: truth.SortedStarts()}
		for _, p := range truth.Parts {
			tj.PartStarts = append(tj.PartStarts, p.Addr)
		}
		tj.CFIErrors = append(tj.CFIErrors, truth.CFIErrorAddrs...)
		blob, err := json.MarshalIndent(&tj, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(*out, name+".truth.json"), blob, 0o644)
	}

	n := 0
	if *wild {
		for _, w := range synth.WildCorpus(*seed) {
			img, truth, err := synth.Generate(w.Config)
			if err != nil {
				return err
			}
			if !w.HasSymbols {
				img = img.Strip()
			}
			if err := write(w.Software, img, truth); err != nil {
				return err
			}
			n++
		}
	} else {
		for _, sp := range synth.SelfBuiltCorpus(*scale, *seed) {
			img, truth, err := synth.Generate(sp.Config)
			if err != nil {
				return err
			}
			if err := write(sp.Config.Name, img, truth); err != nil {
				return err
			}
			n++
		}
	}
	fmt.Printf("wrote %d binaries to %s\n", n, *out)
	return nil
}
