package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a map of relative path -> content under dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUndocumentedFindsBareExports(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"pkg/pkg.go": `// Package pkg is documented.
package pkg

// Documented is fine.
func Documented() {}

func Bare() {}

type BareType struct{}

// DocumentedType is fine.
type DocumentedType struct{}

func (DocumentedType) BareMethod() {}

func (DocumentedType) documentedButUnexported() {}

var BareVar = 1

// Grouped docs cover the whole block.
const (
	CoveredA = 1
	CoveredB = 2
)
`,
		"pkg/pkg_test.go": "package pkg\n\nfunc TestOnly() {}\n",
	})
	missing, err := undocumented(filepath.Join(dir, "pkg"))
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(missing, "\n")
	for _, want := range []string{"func Bare", "type BareType", "method DocumentedType.BareMethod", "value BareVar"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing report for %q in:\n%s", want, joined)
		}
	}
	for _, wrong := range []string{"Documented ", "DocumentedType ", "CoveredA", "CoveredB", "TestOnly", "documentedButUnexported"} {
		if strings.Contains(joined, wrong) {
			t.Errorf("false positive %q in:\n%s", wrong, joined)
		}
	}
	if len(missing) != 4 {
		t.Errorf("want exactly 4 findings, got %d:\n%s", len(missing), joined)
	}
}

func TestUndocumentedRequiresPackageComment(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"pkg/pkg.go": "package pkg\n",
	})
	missing, err := undocumented(filepath.Join(dir, "pkg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || !strings.Contains(missing[0], "package pkg") {
		t.Fatalf("package-comment gap not reported: %v", missing)
	}
}

// gateRoot builds a minimal repo root the snippet checker can replace
// the fetch module with.
func gateRoot(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module fetch\n\ngo 1.21\n"
	writeTree(t, dir, files)
	return dir
}

func TestRunSnippetGate(t *testing.T) {
	root := gateRoot(t, map[string]string{
		"GOOD.md": "Text.\n```go\nfmt.Println(\"hello\")\n```\n" +
			"A whole file:\n```go\npackage main\n\nfunc main() {}\n```\n" +
			"Not checked:\n```sh\nnot go at all\n```\n",
		"BAD.md": "```go\nthis does not compile\n```\n",
	})

	var out, errOut strings.Builder
	if code := run([]string{"-root", root, "-pkgs", "", "-docs", "GOOD.md"}, &out, &errOut); code != 0 {
		t.Fatalf("good snippets rejected (%d):\n%s", code, errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-root", root, "-pkgs", "", "-docs", "GOOD.md,BAD.md"}, &out, &errOut); code != 1 {
		t.Fatalf("bad snippet accepted (%d):\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "BAD.md:1") {
		t.Errorf("failure not attributed to BAD.md line 1:\n%s", errOut.String())
	}
}

func TestRunDocGateExitCodes(t *testing.T) {
	root := gateRoot(t, map[string]string{
		"clean/clean.go": "// Package clean is fully documented.\npackage clean\n\n// Exported has docs.\nfunc Exported() {}\n",
		"dirty/dirty.go": "// Package dirty has one gap.\npackage dirty\n\nfunc Bare() {}\n",
	})
	var out, errOut strings.Builder
	if code := run([]string{"-root", root, "-pkgs", "clean", "-docs", ""}, &out, &errOut); code != 0 {
		t.Fatalf("clean package rejected (%d):\n%s", code, errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"-root", root, "-pkgs", "clean,dirty", "-docs", ""}, &out, &errOut); code != 1 {
		t.Fatalf("dirty package accepted (%d)", code)
	}
	if !strings.Contains(errOut.String(), "func Bare") {
		t.Errorf("gap not named:\n%s", errOut.String())
	}
	if code := run([]string{"-pkgs", "no/such/dir", "-docs", ""}, &out, &errOut); code != 1 {
		t.Fatalf("missing dir accepted (%d)", code)
	}
	if code := run([]string{"-bogus-flag"}, &out, &errOut); code != 2 {
		t.Fatal("bad flag accepted")
	}
}

// TestRepoGateIsGreen runs the real gate over the working tree — the
// same invocation CI uses. It fails whenever someone adds a bare
// exported identifier to a gated package or a broken snippet to the
// docs.
func TestRepoGateIsGreen(t *testing.T) {
	if testing.Short() {
		t.Skip("builds doc snippets; skipped in -short")
	}
	var out, errOut strings.Builder
	if code := run([]string{"-root", "../.."}, &out, &errOut); code != 0 {
		t.Fatalf("docgate on the repo failed (%d):\n%s", code, errOut.String())
	}
}
