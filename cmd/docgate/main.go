// Command docgate is the documentation gate CI runs on every push. It
// enforces two properties the docs satellite work established:
//
//  1. Godoc completeness — every exported identifier (package clause,
//     top-level func/type/const/var, and methods on exported types) in
//     the gated packages carries a doc comment.
//  2. Snippets compile — every ```go fence in the gated markdown files
//     builds against the current public API. Whole-file snippets
//     (starting with a package clause) compile as-is; fragments are
//     wrapped in a function with auto-detected imports. Fences tagged
//     anything other than exactly "go" (sh, text, goas) are ignored.
//
// Usage:
//
//	docgate [-root DIR] [-pkgs csv] [-docs csv]
//
// Exit status 1 lists every violation; fixing the doc or the snippet
// (or bumping the API and the docs together) is the only way through.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// gatedPackages are the default package directories whose exported
// surface must be fully documented (the acceptance list of issue 4
// plus the packages this PR introduced).
const gatedPackages = ".,internal/disasm,internal/oracle,internal/pool,internal/synth,internal/core,internal/resultcache,internal/service,internal/mmapfile,internal/arch,internal/a64"

// gatedDocs are the markdown files whose go fences must build.
const gatedDocs = "README.md,docs/ARCHITECTURE.md,docs/API.md"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the gate and returns the process exit code.
func run(args []string, w, errW io.Writer) int {
	fs := flag.NewFlagSet("docgate", flag.ContinueOnError)
	fs.SetOutput(errW)
	root := fs.String("root", ".", "repository root")
	pkgs := fs.String("pkgs", gatedPackages, "comma-separated package dirs to check for godoc completeness")
	docs := fs.String("docs", gatedDocs, "comma-separated markdown files whose go fences must build")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var problems []string
	for _, dir := range strings.Split(*pkgs, ",") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		missing, err := undocumented(filepath.Join(*root, dir))
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", dir, err))
			continue
		}
		problems = append(problems, missing...)
	}
	for _, doc := range strings.Split(*docs, ",") {
		doc = strings.TrimSpace(doc)
		if doc == "" {
			continue
		}
		failures, err := checkSnippets(*root, doc)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", doc, err))
			continue
		}
		problems = append(problems, failures...)
	}

	if len(problems) > 0 {
		fmt.Fprintf(errW, "docgate: %d problem(s)\n", len(problems))
		for _, p := range problems {
			fmt.Fprintln(errW, "  "+p)
		}
		return 1
	}
	fmt.Fprintln(w, "docgate: ok")
	return 0
}

// --- godoc completeness ---

// undocumented reports every exported identifier in dir (non-test
// files) that lacks a doc comment, as "dir/file:line: name" strings.
func undocumented(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		// Map iteration order is random; pin the reported position to
		// the lexicographically first file so the gate's output is
		// stable run to run.
		packageDocumented := false
		var packagePos token.Pos
		var firstName string
		for name, file := range pkg.Files {
			if file.Doc != nil {
				packageDocumented = true
			}
			if firstName == "" || name < firstName {
				firstName = name
				packagePos = file.Package
			}
			for _, decl := range file.Decls {
				checkDecl(decl, report)
			}
		}
		if !packageDocumented {
			report(packagePos, "package", pkg.Name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// checkDecl reports undocumented exported declarations. A doc comment
// on a const/var/type block covers every spec in the block; a spec's
// own doc or trailing line comment also counts.
func checkDecl(decl ast.Decl, report func(token.Pos, string, string)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return
		}
		if d.Recv != nil {
			if !receiverExported(d) {
				return
			}
			report(d.Pos(), "method", methodName(d))
			return
		}
		report(d.Pos(), "func", d.Name.Name)
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(s.Pos(), "type", s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(name.Pos(), "value", name.Name)
					}
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver names an
// exported type.
func receiverExported(d *ast.FuncDecl) bool {
	if len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// methodName renders "Recv.Method" for reports.
func methodName(d *ast.FuncDecl) string {
	t := d.Recv.List[0].Type
	for {
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
			continue
		}
		break
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// --- snippet compilation ---

// fenceRe matches the opening of a fenced code block and captures the
// info string.
var fenceRe = regexp.MustCompile("^```(.*)$")

// snippet is one extracted code fence.
type snippet struct {
	file string
	line int // 1-based line of the opening fence
	code string
}

// extractGoFences pulls every fence tagged exactly "go" from a
// markdown file.
func extractGoFences(path string) ([]snippet, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []snippet
	lines := strings.Split(string(raw), "\n")
	for i := 0; i < len(lines); i++ {
		m := fenceRe.FindStringSubmatch(lines[i])
		if m == nil || strings.TrimSpace(m[1]) != "go" {
			continue
		}
		start := i + 1
		var body []string
		for i++; i < len(lines) && !strings.HasPrefix(lines[i], "```"); i++ {
			body = append(body, lines[i])
		}
		out = append(out, snippet{file: path, line: start, code: strings.Join(body, "\n")})
	}
	return out, nil
}

// fragmentImports maps the package qualifiers doc fragments may use to
// their import paths. A fragment using anything else must be written
// as a whole file.
var fragmentImports = map[string]string{
	"fetch":    "fetch",
	"fmt":      "fmt",
	"os":       "os",
	"log":      "log",
	"sort":     "sort",
	"time":     "time",
	"context":  "context",
	"bytes":    "bytes",
	"strings":  "strings",
	"errors":   "errors",
	"io":       "io",
	"http":     "net/http",
	"httptest": "net/http/httptest",
	"json":     "encoding/json",
	"hex":      "encoding/hex",
	"runtime":  "runtime",
	"filepath": "path/filepath",
}

// qualRe finds candidate package qualifiers in a fragment.
var qualRe = regexp.MustCompile(`(?:^|[^.\w])([a-z][a-z0-9]*)\.`)

// wrapFragment turns a statement-level fragment into a compilable
// file: detected imports plus a containing function.
func wrapFragment(sn snippet, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "package snippets\n\n")
	var imports []string
	seen := map[string]bool{}
	for _, m := range qualRe.FindAllStringSubmatch(sn.code, -1) {
		if path, ok := fragmentImports[m[1]]; ok && !seen[m[1]] {
			seen[m[1]] = true
			imports = append(imports, path)
		}
	}
	sort.Strings(imports)
	if len(imports) > 0 {
		b.WriteString("import (\n")
		for _, im := range imports {
			fmt.Fprintf(&b, "\t%q\n", im)
		}
		b.WriteString(")\n\n")
	}
	fmt.Fprintf(&b, "func snippet%d() error {\n", n)
	for _, line := range strings.Split(sn.code, "\n") {
		b.WriteString("\t" + line + "\n")
	}
	b.WriteString("\treturn nil\n}\n")
	return b.String()
}

// checkSnippets extracts a file's go fences and builds them in a
// scratch module that replaces the fetch module with root, so
// snippets compile against the exact working tree.
func checkSnippets(root, docFile string) ([]string, error) {
	sns, err := extractGoFences(filepath.Join(root, docFile))
	if err != nil {
		return nil, err
	}
	if len(sns) == 0 {
		return nil, nil
	}
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	tmp, err := os.MkdirTemp("", "docgate-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	gomod := fmt.Sprintf("module docsnippets\n\ngo 1.21\n\nrequire fetch v0.0.0\n\nreplace fetch => %s\n", absRoot)
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte(gomod), 0o644); err != nil {
		return nil, err
	}

	var failures []string
	for i, sn := range sns {
		dir := filepath.Join(tmp, fmt.Sprintf("snippet%02d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		code := sn.code
		if !strings.HasPrefix(strings.TrimSpace(code), "package ") {
			code = wrapFragment(sn, i)
		}
		if err := os.WriteFile(filepath.Join(dir, "snippet.go"), []byte(code), 0o644); err != nil {
			return nil, err
		}
		// Build from inside the snippet dir: a main-package snippet's
		// output binary then lands in the dir instead of colliding with
		// the dir's own name at the module root.
		cmd := exec.Command("go", "build", ".")
		cmd.Dir = dir
		cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
		if out, err := cmd.CombinedOutput(); err != nil {
			failures = append(failures, fmt.Sprintf("%s:%d: snippet does not build:\n%s",
				sn.file, sn.line, indent(string(out))))
		}
	}
	return failures, nil
}

// indent prefixes every line for readable nested build output.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "      " + strings.Join(lines, "\n      ")
}
