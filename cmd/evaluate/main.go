// Command evaluate regenerates every table and figure of the paper's
// evaluation on a synthesized corpus.
//
// Usage:
//
//	evaluate [-scale F] [-seed N] [-jobs N] [-only LIST]
//
// where LIST is a comma-separated subset of:
// table1,table2,table3,table4,table5,fig5a,fig5b,fig5c,iv-b,iv-e,v-a,v-c
// (an unknown name is an error) and -jobs bounds the worker count used
// for corpus generation and per-binary analysis (0 = one per CPU).
// Parallel runs render output identical to -jobs 1.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"fetch/internal/eval"
	"fetch/internal/pool"
)

// experimentKeys lists every -only selector, in execution order.
var experimentKeys = []string{
	"table1", "table2", "iv-b", "fig5a", "fig5b", "fig5c",
	"iv-e", "v-a", "v-c", "table3", "table4", "table5",
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

// parseOnly validates a comma-separated -only value against the known
// experiment keys. An empty value selects everything; an unknown name
// is an error rather than a silent no-op.
func parseOnly(only string) (map[string]bool, error) {
	want := map[string]bool{}
	if only == "" {
		return want, nil
	}
	known := map[string]bool{}
	for _, k := range experimentKeys {
		known[k] = true
	}
	for _, k := range strings.Split(only, ",") {
		k = strings.TrimSpace(k)
		if k == "" {
			continue
		}
		if !known[k] {
			sorted := append([]string(nil), experimentKeys...)
			sort.Strings(sorted)
			return nil, fmt.Errorf("unknown experiment %q (known: %s)", k, strings.Join(sorted, ", "))
		}
		want[k] = true
	}
	return want, nil
}

// newRunners binds every experiment to its driver. The closures
// dereference corpus at call time, so the map can be built (and its
// keys checked against experimentKeys) before the corpus exists.
func newRunners(corpus **eval.Corpus, seed int64, jobs int) map[string]func() (interface{ Format() string }, error) {
	return map[string]func() (interface{ Format() string }, error){
		"table1": func() (interface{ Format() string }, error) { return eval.TableIJobs(seed+50000, jobs) },
		"table2": func() (interface{ Format() string }, error) { return eval.TableII(*corpus) },
		"iv-b":   func() (interface{ Format() string }, error) { return eval.SectionIVB(*corpus) },
		"fig5a":  func() (interface{ Format() string }, error) { return eval.Figure5a(*corpus) },
		"fig5b":  func() (interface{ Format() string }, error) { return eval.Figure5b(*corpus) },
		"fig5c":  func() (interface{ Format() string }, error) { return eval.Figure5c(*corpus) },
		"iv-e":   func() (interface{ Format() string }, error) { return eval.SectionIVE(*corpus) },
		"v-a":    func() (interface{ Format() string }, error) { return eval.SectionVA(*corpus) },
		"v-c":    func() (interface{ Format() string }, error) { return eval.SectionVC(*corpus) },
		"table3": func() (interface{ Format() string }, error) { return eval.TableIII(*corpus) },
		"table4": func() (interface{ Format() string }, error) { return eval.TableIV(*corpus) },
		"table5": func() (interface{ Format() string }, error) { return eval.TableV(*corpus, 64) },
	}
}

// run executes the command against args, writing results to w and
// flag/usage diagnostics to errW. It is separated from main so tests
// can drive flag handling directly.
func run(args []string, w, errW io.Writer) error {
	fs := flag.NewFlagSet("evaluate", flag.ContinueOnError)
	fs.SetOutput(errW)
	scale := fs.Float64("scale", 0.05, "corpus scale in (0,1] (1 = paper-sized, 1,352 binaries)")
	seed := fs.Int64("seed", 1, "corpus seed")
	only := fs.String("only", "", "comma-separated subset of experiments")
	jobs := fs.Int("jobs", runtime.NumCPU(), "worker count for generation and analysis (0 = one per CPU)")
	verbose := fs.Bool("v", false, "print incremental-session statistics for the corpus")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	want, err := parseOnly(*only)
	if err != nil {
		return err
	}
	*jobs = pool.Jobs(*jobs)
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	var corpus *eval.Corpus
	runners := newRunners(&corpus, *seed, *jobs)

	// table1 generates its own wild corpus; skip the self-built corpus
	// (the dominant startup cost) when nothing selected consumes it.
	needCorpus := len(want) == 0
	for k := range want {
		if k != "table1" {
			needCorpus = true
		}
	}
	if needCorpus {
		start := time.Now()
		corpus, err = eval.BuildSelfBuiltJobs(*scale, *seed, *jobs)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "corpus: %d binaries, %d true functions (scale %.2f, jobs %d, built in %v)\n\n",
			len(corpus.Bins), corpus.TotalFuncs(), *scale, *jobs, time.Since(start).Round(time.Millisecond))
		if *verbose {
			st, err := eval.SessionStats(corpus)
			if err != nil {
				return fmt.Errorf("session stats: %w", err)
			}
			fmt.Fprintf(w, "%s\n", st.Format())
		}
	}

	for _, key := range experimentKeys {
		if !sel(key) {
			continue
		}
		t0 := time.Now()
		res, err := runners[key]()
		if err != nil {
			return fmt.Errorf("%s: %w", key, err)
		}
		fmt.Fprintf(w, "==== %s (%v) ====\n%s\n", key, time.Since(t0).Round(time.Millisecond), res.Format())
	}
	return nil
}
