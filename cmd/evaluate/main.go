// Command evaluate regenerates every table and figure of the paper's
// evaluation on a synthesized corpus.
//
// Usage:
//
//	evaluate [-scale F] [-seed N] [-only LIST]
//
// where LIST is a comma-separated subset of:
// table1,table2,table3,table4,table5,fig5a,fig5b,fig5c,iv-b,iv-e,v-a,v-c
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fetch/internal/eval"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

func run() error {
	scale := flag.Float64("scale", 0.05, "corpus scale in (0,1] (1 = paper-sized, 1,352 binaries)")
	seed := flag.Int64("seed", 1, "corpus seed")
	only := flag.String("only", "", "comma-separated subset of experiments")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	start := time.Now()
	corpus, err := eval.BuildSelfBuilt(*scale, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("corpus: %d binaries, %d true functions (scale %.2f, built in %v)\n\n",
		len(corpus.Bins), corpus.TotalFuncs(), *scale, time.Since(start).Round(time.Millisecond))

	type experiment struct {
		key string
		run func() (interface{ Format() string }, error)
	}
	experiments := []experiment{
		{"table1", func() (interface{ Format() string }, error) { return eval.TableI(*seed + 50000) }},
		{"table2", func() (interface{ Format() string }, error) { return eval.TableII(corpus) }},
		{"iv-b", func() (interface{ Format() string }, error) { return eval.SectionIVB(corpus) }},
		{"fig5a", func() (interface{ Format() string }, error) { return eval.Figure5a(corpus) }},
		{"fig5b", func() (interface{ Format() string }, error) { return eval.Figure5b(corpus) }},
		{"fig5c", func() (interface{ Format() string }, error) { return eval.Figure5c(corpus) }},
		{"iv-e", func() (interface{ Format() string }, error) { return eval.SectionIVE(corpus) }},
		{"v-a", func() (interface{ Format() string }, error) { return eval.SectionVA(corpus) }},
		{"v-c", func() (interface{ Format() string }, error) { return eval.SectionVC(corpus) }},
		{"table3", func() (interface{ Format() string }, error) { return eval.TableIII(corpus) }},
		{"table4", func() (interface{ Format() string }, error) { return eval.TableIV(corpus) }},
		{"table5", func() (interface{ Format() string }, error) { return eval.TableV(corpus, 64) }},
	}
	for _, ex := range experiments {
		if !sel(ex.key) {
			continue
		}
		t0 := time.Now()
		res, err := ex.run()
		if err != nil {
			return fmt.Errorf("%s: %w", ex.key, err)
		}
		fmt.Printf("==== %s (%v) ====\n%s\n", ex.key, time.Since(t0).Round(time.Millisecond), res.Format())
	}
	return nil
}
