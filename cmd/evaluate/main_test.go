package main

import (
	"errors"
	"flag"
	"io"
	"strings"
	"testing"

	"fetch/internal/eval"
)

func TestParseOnly(t *testing.T) {
	tests := []struct {
		name    string
		only    string
		want    []string
		wantErr string
	}{
		{name: "empty selects everything", only: "", want: nil},
		{name: "single known key", only: "table3", want: []string{"table3"}},
		{name: "several keys with spaces", only: " fig5a , v-c ,table1", want: []string{"fig5a", "v-c", "table1"}},
		{name: "trailing comma tolerated", only: "iv-b,", want: []string{"iv-b"}},
		{name: "unknown key errors", only: "table9", wantErr: `unknown experiment "table9"`},
		{name: "unknown among known still errors", only: "table1,bogus,v-a", wantErr: `unknown experiment "bogus"`},
		{name: "case matters", only: "Table1", wantErr: `unknown experiment "Table1"`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseOnly(tc.only)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("parseOnly(%q) succeeded, want error containing %q", tc.only, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				// The message must teach the valid names.
				if !strings.Contains(err.Error(), "table5") || !strings.Contains(err.Error(), "iv-e") {
					t.Errorf("error %q does not list the known experiments", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseOnly(%q): %v", tc.only, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("parseOnly(%q) = %v, want keys %v", tc.only, got, tc.want)
			}
			for _, k := range tc.want {
				if !got[k] {
					t.Errorf("parseOnly(%q) missing %q", tc.only, k)
				}
			}
		})
	}
}

// TestRunRejectsUnknownExperiment drives the full run helper: an
// unknown -only name must error out before any corpus is built (the
// old behavior silently ran zero experiments).
func TestRunRejectsUnknownExperiment(t *testing.T) {
	err := run([]string{"-only", "tableX"}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("run accepted an unknown experiment name")
	}
	if !strings.Contains(err.Error(), `unknown experiment "tableX"`) {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, io.Discard, io.Discard); err == nil {
		t.Error("run accepted an unknown flag")
	}
	if err := run([]string{"stray-arg"}, io.Discard, io.Discard); err == nil {
		t.Error("run accepted a stray positional argument")
	}
}

func TestRunHelpIsNotAFailure(t *testing.T) {
	err := run([]string{"-h"}, io.Discard, io.Discard)
	if !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h returned %v, want flag.ErrHelp (main exits 0 on it)", err)
	}
}

// TestExperimentKeysMatchRunners guards the -only vocabulary against
// drift: every key must have a runner, every runner a key, and
// parseOnly must accept exactly that set.
func TestExperimentKeysMatchRunners(t *testing.T) {
	var corpus *eval.Corpus
	runners := newRunners(&corpus, 1, 1)
	seen := map[string]bool{}
	for _, k := range experimentKeys {
		if seen[k] {
			t.Errorf("duplicate experiment key %q", k)
		}
		seen[k] = true
		if runners[k] == nil {
			t.Errorf("experiment key %q has no runner", k)
		}
		if _, err := parseOnly(k); err != nil {
			t.Errorf("parseOnly rejects its own key %q: %v", k, err)
		}
	}
	for k := range runners {
		if !seen[k] {
			t.Errorf("runner %q is unreachable: not in experimentKeys", k)
		}
	}
	if len(experimentKeys) != 12 {
		t.Errorf("expected 12 experiments, have %d", len(experimentKeys))
	}
}
