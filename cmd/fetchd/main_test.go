package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"fetch"
	"fetch/internal/service"
)

func TestRunRejectsBadFlagsAndArgs(t *testing.T) {
	var errW bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &errW, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"positional"}, &errW, nil); err == nil ||
		!strings.Contains(err.Error(), "unexpected arguments") {
		t.Fatalf("positional args: %v", err)
	}
	if err := run([]string{"-log-format", "xml"}, &errW, nil); err == nil ||
		!strings.Contains(err.Error(), "log-format") {
		t.Fatalf("bad -log-format: %v", err)
	}
}

// TestStartupLogPrintsResolvedConfig pins the startup-log bugfix: the
// banner must report the configuration the server actually runs with —
// -jobs 0 resolved to one slot per CPU — and name the intra-jobs,
// queue, and upload bounds, not echo raw flag values.
func TestStartupLogPrintsResolvedConfig(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	var errW syncBuffer
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-jobs", "0", "-intra-jobs", "2",
			"-max-queued", "7", "-queue-timeout", "3s", "-log-format", "none",
		}, &errW, ready)
	}()
	select {
	case <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v\n%s", err, errW.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after SIGINT")
	}

	banner := errW.String()
	for _, want := range []string{
		fmt.Sprintf("jobs=%d", runtime.GOMAXPROCS(0)), // resolved, not the raw 0
		"intra-jobs=2",
		"max-queued=7",
		"queue-timeout=3s",
		fmt.Sprintf("max-upload=%d", service.DefaultMaxUploadBytes),
		"log-format=none",
	} {
		if !strings.Contains(banner, want) {
			t.Errorf("startup log missing %q:\n%s", want, banner)
		}
	}
	if strings.Contains(banner, "jobs=0") {
		t.Errorf("startup log echoes the raw -jobs flag instead of the resolved value:\n%s", banner)
	}
}

// TestAccessLogJSON serves one request with -log-format json and
// checks a structured access-log line reaches the error stream.
func TestAccessLogJSON(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	var errW syncBuffer
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-jobs", "1", "-log-format", "json"}, &errW, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v\n%s", err, errW.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after SIGINT")
	}

	var logged bool
	for _, line := range strings.Split(errW.String(), "\n") {
		if !strings.HasPrefix(line, "{") {
			continue
		}
		var entry map[string]any
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("non-JSON access log line %q: %v", line, err)
		}
		if entry["path"] == "/v1/healthz" && entry["status"] == float64(200) {
			logged = true
		}
	}
	if !logged {
		t.Fatalf("no JSON access-log record for /v1/healthz:\n%s", errW.String())
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer: run's handler
// goroutines write access logs concurrently with the test's reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

// Write appends under the lock.
func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

// String snapshots the buffer under the lock.
func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunRejectsUnusableCacheDir(t *testing.T) {
	file := t.TempDir() + "/occupied"
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var errW bytes.Buffer
	if err := run([]string{"-cache-dir", file + "/sub"}, &errW, nil); err == nil {
		t.Fatal("cache dir under a regular file accepted")
	}
}

// TestServeAnalyzeShutdown exercises the full daemon lifecycle: bind
// an ephemeral port, serve a real analysis over TCP, then deliver
// SIGINT and require a clean drained exit.
func TestServeAnalyzeShutdown(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	var errW bytes.Buffer
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-jobs", "2"}, &errW, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v\n%s", err, errW.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	bin, _, err := fetch.GenerateSample(fetch.SampleConfig{Seed: 7, NumFuncs: 40, Stripped: true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/analyze", "application/octet-stream", bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d: %s", resp.StatusCode, raw)
	}
	var ar struct {
		SHA256 string          `json:"sha256"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatalf("analyze response: %v", err)
	}
	if _, err := fetch.DecodeResult(ar.Result); err != nil {
		t.Fatalf("served result does not decode: %v", err)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after SIGINT")
	}
}
