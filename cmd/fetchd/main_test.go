package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"fetch"
)

func TestRunRejectsBadFlagsAndArgs(t *testing.T) {
	var errW bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &errW, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"positional"}, &errW, nil); err == nil ||
		!strings.Contains(err.Error(), "unexpected arguments") {
		t.Fatalf("positional args: %v", err)
	}
}

func TestRunRejectsUnusableCacheDir(t *testing.T) {
	file := t.TempDir() + "/occupied"
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var errW bytes.Buffer
	if err := run([]string{"-cache-dir", file + "/sub"}, &errW, nil); err == nil {
		t.Fatal("cache dir under a regular file accepted")
	}
}

// TestServeAnalyzeShutdown exercises the full daemon lifecycle: bind
// an ephemeral port, serve a real analysis over TCP, then deliver
// SIGINT and require a clean drained exit.
func TestServeAnalyzeShutdown(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	var errW bytes.Buffer
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-jobs", "2"}, &errW, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v\n%s", err, errW.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	bin, _, err := fetch.GenerateSample(fetch.SampleConfig{Seed: 7, NumFuncs: 40, Stripped: true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/analyze", "application/octet-stream", bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d: %s", resp.StatusCode, raw)
	}
	var ar struct {
		SHA256 string          `json:"sha256"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatalf("analyze response: %v", err)
	}
	if _, err := fetch.DecodeResult(ar.Result); err != nil {
		t.Fatalf("served result does not decode: %v", err)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after SIGINT")
	}
}
