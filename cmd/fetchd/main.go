// Command fetchd is the long-running FETCH analysis service: an HTTP
// front end over the pipeline that content-addresses every analyzed
// binary, so byte-identical binaries are analyzed once and served from
// the result cache afterwards.
//
// Usage:
//
//	fetchd [-addr :8421] [-jobs N] [-intra-jobs N] [-cache-entries N] [-cache-dir DIR] [-max-upload BYTES]
//
// Endpoints (documented with examples in docs/API.md):
//
//	POST /v1/analyze         upload a binary (raw bytes) or look one
//	                         up by {"sha256": "..."} JSON body
//	GET  /v1/result/{sha256} cached result by content hash
//	GET  /v1/healthz         liveness probe
//	GET  /v1/stats           cache hit/miss/latency counters
//
// At most -jobs analyses run concurrently; excess uploads queue.
// -intra-jobs > 1 additionally shards each admitted analysis inside
// the binary (same output, more cores per request).
// -cache-dir persists results across restarts. On SIGINT/SIGTERM the
// server stops accepting connections and drains in-flight requests
// before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fetch"
	"fetch/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "fetchd:", err)
		os.Exit(1)
	}
}

// run builds and serves the service until the process receives
// SIGINT/SIGTERM or ready's consumer closes the listener. The ready
// channel, when non-nil, receives the bound address once the server
// is listening — tests use it to drive a real TCP server without
// races on startup.
func run(args []string, errW io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("fetchd", flag.ContinueOnError)
	fs.SetOutput(errW)
	addr := fs.String("addr", ":8421", "listen address")
	jobs := fs.Int("jobs", 0, "max concurrent analyses (0 = one per CPU)")
	intraJobs := fs.Int("intra-jobs", 0, "per-request intra-binary shard parallelism (≤1 = sequential)")
	cacheEntries := fs.Int("cache-entries", 4096, "in-memory result cache capacity")
	cacheDir := fs.String("cache-dir", "", "persistent result cache directory (empty = memory only)")
	maxUpload := fs.Int64("max-upload", service.DefaultMaxUploadBytes, "max accepted binary size in bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	cache, err := fetch.NewCache(fetch.CacheConfig{
		MaxEntries: *cacheEntries,
		Dir:        *cacheDir,
	})
	if err != nil {
		return err
	}
	svc, err := service.New(service.Config{
		Cache:          cache,
		MaxInFlight:    *jobs,
		IntraJobs:      *intraJobs,
		MaxUploadBytes: *maxUpload,
	})
	if err != nil {
		return err
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(errW, "fetchd: listening on %s (jobs=%d, cache=%d entries, dir=%q)\n",
		ln.Addr(), *jobs, *cacheEntries, *cacheDir)

	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		// Graceful drain: stop accepting, finish in-flight requests,
		// give up after a deadline.
		shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		<-errc // reap the Serve goroutine's ErrServerClosed
		return nil
	}
}
