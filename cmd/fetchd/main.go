// Command fetchd is the long-running FETCH analysis service: an HTTP
// front end over the pipeline that content-addresses every analyzed
// binary, so byte-identical binaries are analyzed once and served from
// the result cache afterwards.
//
// Usage:
//
//	fetchd [-addr :8421] [-jobs N] [-intra-jobs N] [-max-queued N]
//	       [-queue-timeout D] [-cache-entries N] [-cache-dir DIR]
//	       [-cache-max-bytes N]
//	       [-max-upload BYTES] [-spool-dir DIR] [-log-format text|json|none]
//
// Endpoints (documented with examples in docs/API.md):
//
//	POST /v1/analyze         upload a binary (raw bytes) or look one
//	                         up by {"sha256": "..."} JSON body
//	POST /v1/jobs            submit a binary for asynchronous analysis
//	GET  /v1/jobs/{id}       poll an async job until done/failed
//	GET  /v1/result/{sha256} cached result by content hash
//	GET  /v1/healthz         liveness probe
//	GET  /v1/stats           cache hit/miss/latency counters
//	GET  /metrics            Prometheus text-format metrics
//
// At most -jobs analyses run concurrently; up to -max-queued more wait
// for at most -queue-timeout before the server answers 503. Arrivals
// beyond both bounds are rejected immediately with 429 and a
// Retry-After hint. -intra-jobs > 1 additionally shards each admitted
// analysis inside the binary (same output, more cores per request).
// -cache-dir persists results across restarts. Uploads stream to temp
// files under -spool-dir (system temp dir by default) and are analyzed
// file-backed, so accepting a large binary never buffers it on the
// heap. -log-format selects the structured access-log encoding on
// stderr. On SIGINT/SIGTERM the
// server stops accepting connections and drains in-flight requests
// before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"fetch"
	"fetch/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "fetchd:", err)
		os.Exit(1)
	}
}

// syncWriter serializes writes: the startup line, the access logger,
// and handler goroutines all share the same error stream.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// Write forwards under the lock.
func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// newLogger builds the access logger for -log-format, or nil for
// "none" (access logging disabled).
func newLogger(format string, w io.Writer) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	case "none":
		return nil, nil
	default:
		return nil, fmt.Errorf("invalid -log-format %q (want text, json, or none)", format)
	}
}

// run builds and serves the service until the process receives
// SIGINT/SIGTERM or ready's consumer closes the listener. The ready
// channel, when non-nil, receives the bound address once the server
// is listening — tests use it to drive a real TCP server without
// races on startup.
func run(args []string, errW io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("fetchd", flag.ContinueOnError)
	fs.SetOutput(errW)
	addr := fs.String("addr", ":8421", "listen address")
	jobs := fs.Int("jobs", 0, "max concurrent analyses (0 = one per CPU)")
	intraJobs := fs.Int("intra-jobs", 0, "per-request intra-binary shard parallelism (≤1 = sequential)")
	maxQueued := fs.Int("max-queued", 0, "max requests waiting for an analysis slot (0 = 4×jobs, negative = no queue)")
	queueTimeout := fs.Duration("queue-timeout", 0, "max time a request may wait for a slot (0 = default)")
	cacheEntries := fs.Int("cache-entries", 4096, "in-memory result cache capacity")
	cacheDir := fs.String("cache-dir", "", "persistent result cache directory (empty = memory only)")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0, "disk cache byte budget, oldest entries evicted first (0 = unbounded)")
	maxUpload := fs.Int64("max-upload", service.DefaultMaxUploadBytes, "max accepted binary size in bytes")
	spoolDir := fs.String("spool-dir", "", "upload spool directory (empty = system temp dir)")
	logFormat := fs.String("log-format", "text", "access log encoding: text, json, or none")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	out := &syncWriter{w: errW}
	logger, err := newLogger(*logFormat, out)
	if err != nil {
		return err
	}

	cache, err := fetch.NewCache(fetch.CacheConfig{
		MaxEntries:   *cacheEntries,
		Dir:          *cacheDir,
		MaxDiskBytes: *cacheMaxBytes,
	})
	if err != nil {
		return err
	}
	svc, err := service.New(service.Config{
		Cache:          cache,
		MaxInFlight:    *jobs,
		IntraJobs:      *intraJobs,
		MaxQueued:      *maxQueued,
		QueueTimeout:   *queueTimeout,
		MaxUploadBytes: *maxUpload,
		SpoolDir:       *spoolDir,
		Logger:         logger,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	// ReadTimeout bounds slow uploads, WriteTimeout covers the worst
	// admitted case (queue wait + analysis), IdleTimeout reaps
	// keep-alive connections.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	// Log the RESOLVED configuration — what the server actually runs
	// with — not the raw flag values (jobs=0 resolves to one per CPU).
	fmt.Fprintf(out, "fetchd: listening on %s (jobs=%d, intra-jobs=%d, max-queued=%d, queue-timeout=%s, max-upload=%d, spool-dir=%q, cache=%d entries, dir=%q, log-format=%s)\n",
		ln.Addr(), svc.MaxInFlight(), svc.IntraJobs(), svc.MaxQueued(),
		svc.QueueTimeout(), svc.MaxUploadBytes(), svc.SpoolDir(), *cacheEntries, *cacheDir, *logFormat)

	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		// Graceful drain: stop accepting, finish in-flight requests,
		// give up after a deadline. svc.Close (deferred) then fails
		// any async jobs still waiting for a slot.
		shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		<-errc // reap the Serve goroutine's ErrServerClosed
		return nil
	}
}
