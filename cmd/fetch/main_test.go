package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fetch"
)

// writeSample materializes a generated sample ELF for path-based runs.
func writeSample(t *testing.T, dir string, seed int64) string {
	t.Helper()
	raw, _, err := fetch.GenerateSample(fetch.SampleConfig{Seed: seed, NumFuncs: 24, Stripped: true})
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "bin"+strings.ReplaceAll(t.Name(), "/", "_")+string(rune('a'+seed)))
	if err := os.WriteFile(p, raw, 0o755); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunSample(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-sample", "-seed", "3"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	for _, want := range []string{"function_starts", "fde_starts", "merged_parts"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSampleVerboseStats(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-sample", "-seed", "3", "-v"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"stats.insts_decoded", "stats.insts_reused", "derived.reused_pct",
		"stats.extends", "stats.xref_iterations", "stats.passes.fde.wall_ns",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("verbose output missing %q", want)
		}
	}
}

func TestRunMultiPathJobsDeterministic(t *testing.T) {
	dir := t.TempDir()
	p1 := writeSample(t, dir, 1)
	p2 := writeSample(t, dir, 2)
	p3 := writeSample(t, dir, 3)

	var seq, par, errOut strings.Builder
	if err := run([]string{"-jobs", "1", p1, p2, p3}, &seq, &errOut); err != nil {
		t.Fatalf("jobs=1: %v", err)
	}
	if err := run([]string{"-jobs", "3", p1, p2, p3}, &par, &errOut); err != nil {
		t.Fatalf("jobs=3: %v", err)
	}
	if seq.String() != par.String() {
		t.Error("multi-binary output differs between -jobs 1 and -jobs 3")
	}
	// Per-binary headers appear in argument order.
	i1 := strings.Index(seq.String(), "== "+p1+" ==")
	i2 := strings.Index(seq.String(), "== "+p2+" ==")
	i3 := strings.Index(seq.String(), "== "+p3+" ==")
	if i1 < 0 || i2 < i1 || i3 < i2 {
		t.Errorf("headers missing or out of order: %d %d %d", i1, i2, i3)
	}
}

func TestRunErrorExitOnBadBinary(t *testing.T) {
	dir := t.TempDir()
	good := writeSample(t, dir, 4)
	missing := filepath.Join(dir, "no-such-file")

	var out, errOut strings.Builder
	err := run([]string{good, missing}, &out, &errOut)
	if err == nil {
		t.Fatal("run succeeded despite a missing binary")
	}
	if !strings.Contains(err.Error(), "1 of 2 binaries failed") {
		t.Errorf("error %q does not summarize the failure count", err)
	}
	// The good binary is still fully reported.
	if !strings.Contains(out.String(), "== "+good+" ==") ||
		!strings.Contains(out.String(), "function_starts") {
		t.Error("good binary not reported alongside the failure")
	}
	if !strings.Contains(errOut.String(), "no-such-file") {
		t.Error("per-item failure not on stderr")
	}
}

func TestRunStrategyFlagsChangeOutput(t *testing.T) {
	var full, fdeOnly strings.Builder
	if err := run([]string{"-sample", "-seed", "5"}, &full, &full); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sample", "-seed", "5", "-fde-only"}, &fdeOnly, &fdeOnly); err != nil {
		t.Fatal(err)
	}
	if full.String() == fdeOnly.String() {
		t.Error("-fde-only output identical to full pipeline")
	}
	wantZero := fmt.Sprintf("%-28s %s", "new_from_pointers", "0")
	if !strings.Contains(fdeOnly.String(), wantZero) {
		t.Error("-fde-only still reports pointer-derived starts")
	}
}

// TestRunJSONMatchesCodec proves -json emits the exact serialized
// schema: the embedded result decodes through the public codec.
func TestRunJSONMatchesCodec(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-sample", "-seed", "6", "-json"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Name   string          `json:"name"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("-json output is not one JSON document: %v\n%s", err, out.String())
	}
	if doc.Name != "sample" {
		t.Errorf("name %q", doc.Name)
	}
	res, err := fetch.DecodeResult(doc.Result)
	if err != nil {
		t.Fatalf("embedded result rejected by the codec: %v", err)
	}
	if len(res.FunctionStarts) == 0 {
		t.Error("empty analysis in JSON output")
	}
}

// TestRunCacheDirReusesResults runs the same binary twice against one
// cache directory and requires identical reports plus a populated
// cache.
func TestRunCacheDirReusesResults(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	p := writeSample(t, dir, 6)

	var first, second, errOut strings.Builder
	if err := run([]string{"-cache-dir", cacheDir, p}, &first, &errOut); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-cache-dir", cacheDir, p}, &second, &errOut); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Error("cached run output differs from cold run")
	}
	// Beside the whole-binary result, the delta tier writes a manifest
	// ("-mf.") and per-function range entries ("-fn-"); the result
	// entry itself must be exactly one.
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.rc"))
	if err != nil {
		t.Fatal(err)
	}
	var results []string
	for _, e := range entries {
		base := filepath.Base(e)
		if !strings.Contains(base, "-mf.") && !strings.Contains(base, "-fn-") {
			results = append(results, e)
		}
	}
	if len(results) != 1 {
		t.Errorf("cache dir result entries: %v", results)
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(nil, &out, &errOut); err == nil {
		t.Error("no-argument run succeeded")
	} else if !strings.Contains(err.Error(), "no binaries") {
		t.Errorf("unexpected error: %v", err)
	}
	if !strings.Contains(errOut.String(), "Usage") && !strings.Contains(errOut.String(), "-sample") {
		t.Error("usage not printed to errW")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &out, &errOut); err == nil {
		t.Error("unknown flag accepted")
	}
}

// TestRunCacheMaxBytes exercises the -cache-max-bytes flag: it must
// require -cache-dir, and a tiny budget must keep the directory under
// it across runs.
func TestRunCacheMaxBytes(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-cache-max-bytes", "1024", "-sample"}, &out, &errOut); err == nil {
		t.Fatal("-cache-max-bytes accepted without -cache-dir")
	}

	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	const budget = 4096
	for seed := int64(1); seed <= 3; seed++ {
		p := writeSample(t, dir, seed)
		if err := run([]string{"-cache-dir", cacheDir, "-cache-max-bytes", fmt.Sprint(budget), p}, &out, &errOut); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.rc"))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range entries {
		info, err := os.Stat(e)
		if err != nil {
			continue
		}
		total += info.Size()
	}
	if total > budget {
		t.Fatalf("cache dir %d bytes exceeds -cache-max-bytes %d", total, budget)
	}
}
