// Command fetch analyzes System-V x64 ELF binaries and prints the
// detected function starts along with the corrections the pipeline
// applied (merged non-contiguous parts, removed bogus FDEs, starts
// recovered from function pointers and tail calls).
//
// Usage:
//
//	fetch [-fde-only] [-no-xref] [-no-tailcall] [-jobs N] [-v] BINARY...
//	fetch -sample [-seed N] [-v]        analyze a generated sample
//
// Multiple binaries are analyzed concurrently (-jobs bounds the worker
// count, 0 = one per CPU) and reported in argument order; a failure on
// one binary does not stop the others.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"fetch"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fetch:", err)
		os.Exit(1)
	}
}

func printResult(res *fetch.Result, verbose bool) {
	fmt.Printf("function starts:        %d\n", len(res.FunctionStarts))
	fmt.Printf("raw FDE starts:         %d\n", len(res.FDEStarts))
	fmt.Printf("from pointers (§IV-E):  %d\n", len(res.NewFromPointers))
	fmt.Printf("from tail calls:        %d\n", len(res.NewFromTailCalls))
	fmt.Printf("merged parts (Alg. 1):  %d\n", len(res.MergedParts))
	fmt.Printf("removed bogus FDEs:     %d\n", len(res.RemovedBogusFDEs))
	fmt.Printf("skipped (no CFI info):  %d\n", res.SkippedIncompleteCFI)
	if verbose {
		st := res.Stats
		total := st.InstsDecoded + st.InstsReused
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(st.InstsReused) / float64(total)
		}
		fmt.Printf("insts decoded/reused:   %d/%d (%.1f%% reused)\n",
			st.InstsDecoded, st.InstsReused, pct)
		fmt.Printf("session ops:            %d extend, %d retract, %d fork, %d probe\n",
			st.Extends, st.Retracts, st.Forks, st.Probes)
		fmt.Printf("xref iterations:        %d (converged: %v)\n",
			st.XrefIterations, st.XrefConverged)
		for _, ps := range st.Passes {
			fmt.Printf("pass %-10s         %v\n", ps.Name, ps.Wall.Round(time.Microsecond))
		}
		for _, a := range res.FunctionStarts {
			fmt.Printf("%#x\n", a)
		}
		parts := make([]uint64, 0, len(res.MergedParts))
		for part := range res.MergedParts {
			parts = append(parts, part)
		}
		sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
		for _, part := range parts {
			fmt.Printf("merged %#x -> %#x\n", part, res.MergedParts[part])
		}
	}
}

func run() error {
	fdeOnly := flag.Bool("fde-only", false, "only extract FDE PC Begin values")
	noXref := flag.Bool("no-xref", false, "disable function-pointer detection")
	noTail := flag.Bool("no-tailcall", false, "disable Algorithm 1 error fixing")
	sample := flag.Bool("sample", false, "analyze a generated sample binary instead of a file")
	seed := flag.Int64("seed", 1, "sample generation seed")
	jobs := flag.Int("jobs", 0, "concurrent analyses for multiple binaries (0 = one per CPU)")
	verbose := flag.Bool("v", false, "list every detected start plus per-pass timing and session statistics")
	flag.Parse()

	var opts []fetch.Option
	if *fdeOnly {
		opts = append(opts, fetch.FDEOnly())
	}
	if *noXref {
		opts = append(opts, fetch.WithoutXref())
	}
	if *noTail {
		opts = append(opts, fetch.WithoutTailCall())
	}

	switch {
	case *sample:
		raw, _, err := fetch.GenerateSample(fetch.SampleConfig{Seed: *seed, Stripped: true})
		if err != nil {
			return err
		}
		res, err := fetch.Analyze(raw, opts...)
		if err != nil {
			return err
		}
		printResult(res, *verbose)
		return nil
	case flag.NArg() >= 1:
		inputs := make([]fetch.Input, flag.NArg())
		for i, p := range flag.Args() {
			inputs[i] = fetch.Input{Path: p}
		}
		results := fetch.AnalyzeBatch(inputs, fetch.BatchOptions{Jobs: *jobs, Options: opts})
		var firstErr error
		for _, br := range results {
			if len(results) > 1 {
				fmt.Printf("== %s ==\n", br.Name)
			}
			if br.Err != nil {
				fmt.Fprintf(os.Stderr, "fetch: %s: %v\n", br.Name, br.Err)
				if firstErr == nil {
					firstErr = fmt.Errorf("%d of %d binaries failed", failures(results), len(results))
				}
				continue
			}
			printResult(br.Result, *verbose)
		}
		return firstErr
	default:
		flag.Usage()
		os.Exit(2)
		return nil
	}
}

// failures counts the batch items that reported an error.
func failures(results []fetch.BatchResult) int {
	n := 0
	for _, br := range results {
		if br.Err != nil {
			n++
		}
	}
	return n
}
