// Command fetch analyzes System-V ELF binaries (x86-64 and aarch64,
// dispatched on the ELF header's e_machine) and prints the detected
// function starts along with the corrections the pipeline applied
// (merged non-contiguous parts, removed bogus FDEs, starts recovered
// from function pointers and tail calls).
//
// Usage:
//
//	fetch [-fde-only] [-no-xref] [-no-tailcall] [-jobs N] [-cache-dir DIR]
//	      [-cache-max-bytes N] [-json] [-v] BINARY...
//	fetch -sample [-seed N] [-arch a64] [-v]   analyze a generated sample
//
// Multiple binaries are analyzed concurrently (-jobs bounds the worker
// count, 0 = one per CPU) and reported in argument order; a failure on
// one binary does not stop the others. Text output labels every value
// with its canonical schema field name (docs/API.md), and -json emits
// the serialized schema itself — the CLI and the fetchd API speak the
// same vocabulary by construction. -cache-dir reuses results across
// runs via the content-addressed cache.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"

	"fetch"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "fetch:", err)
		os.Exit(1)
	}
}

// printResult renders one analysis. Every labeled value goes through
// fetch.Summarize, so the names and units here are exactly the JSON
// schema's — the codec test enforces it, and docs/API.md documents one
// vocabulary for both.
func printResult(w io.Writer, res *fetch.Result, verbose bool) {
	for _, line := range fetch.Summarize(res, verbose) {
		fmt.Fprintf(w, "%-28s %s\n", line.Name, line.Value)
	}
	if verbose {
		for _, a := range res.FunctionStarts {
			fmt.Fprintf(w, "%#x\n", a)
		}
		parts := make([]uint64, 0, len(res.MergedParts))
		for part := range res.MergedParts {
			parts = append(parts, part)
		}
		sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
		for _, part := range parts {
			fmt.Fprintf(w, "merged %#x -> %#x\n", part, res.MergedParts[part])
		}
	}
}

// printJSON emits the serialized result schema, wrapped with the item
// name so multi-binary runs stay self-describing (one JSON document
// per binary).
func printJSON(w io.Writer, name string, res *fetch.Result) error {
	blob, err := fetch.EncodeResult(res)
	if err != nil {
		return err
	}
	doc, err := json.MarshalIndent(struct {
		Name   string          `json:"name"`
		Result json.RawMessage `json:"result"`
	}{Name: name, Result: blob}, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", doc)
	return err
}

// intraJobs resolves how much of the -jobs budget goes inside each
// binary: all of it for a single input (cross-binary workers would
// idle), none for several (the batch pool already saturates). 0 means
// one per CPU, matching the batch convention.
func intraJobs(jobs, inputs int) int {
	if inputs > 1 {
		return 1
	}
	if jobs == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return jobs
}

// run executes the command against args, writing results to w and
// per-binary failures plus flag diagnostics to errW. It is separated
// from main so tests can drive every path directly.
func run(args []string, w, errW io.Writer) error {
	fs := flag.NewFlagSet("fetch", flag.ContinueOnError)
	fs.SetOutput(errW)
	fdeOnly := fs.Bool("fde-only", false, "only extract FDE PC Begin values")
	noXref := fs.Bool("no-xref", false, "disable function-pointer detection")
	noTail := fs.Bool("no-tailcall", false, "disable Algorithm 1 error fixing")
	sample := fs.Bool("sample", false, "analyze a generated sample binary instead of a file")
	seed := fs.Int64("seed", 1, "sample generation seed")
	arch := fs.String("arch", "", "sample ISA: x64 (default) or a64; real binaries dispatch on their ELF header")
	jobs := fs.Int("jobs", 0, "parallelism: across binaries when several are given, inside the binary when one is (0 = one per CPU)")
	cacheDir := fs.String("cache-dir", "", "persistent result cache directory (reuses results across runs)")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0, "disk cache byte budget, oldest entries evicted first (0 = unbounded, needs -cache-dir)")
	jsonOut := fs.Bool("json", false, "emit the serialized result schema (docs/API.md) instead of text")
	verbose := fs.Bool("v", false, "list every detected start plus per-pass timing and session statistics")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var opts []fetch.Option
	if *fdeOnly {
		opts = append(opts, fetch.FDEOnly())
	}
	if *noXref {
		opts = append(opts, fetch.WithoutXref())
	}
	if *noTail {
		opts = append(opts, fetch.WithoutTailCall())
	}
	if *cacheMaxBytes != 0 && *cacheDir == "" {
		return fmt.Errorf("-cache-max-bytes requires -cache-dir")
	}
	if *cacheDir != "" {
		cache, err := fetch.NewCache(fetch.CacheConfig{Dir: *cacheDir, MaxDiskBytes: *cacheMaxBytes})
		if err != nil {
			return err
		}
		opts = append(opts, fetch.WithCache(cache))
	}

	emit := func(name string, res *fetch.Result, header bool) error {
		if *jsonOut {
			return printJSON(w, name, res)
		}
		if header {
			fmt.Fprintf(w, "== %s ==\n", name)
		}
		printResult(w, res, *verbose)
		return nil
	}

	switch {
	case *sample:
		raw, _, err := fetch.GenerateSample(fetch.SampleConfig{Seed: *seed, Arch: *arch, Stripped: true})
		if err != nil {
			return err
		}
		res, err := fetch.Analyze(raw, append(opts, fetch.WithJobs(intraJobs(*jobs, 1)))...)
		if err != nil {
			return err
		}
		return emit("sample", res, false)
	case fs.NArg() >= 1:
		inputs := make([]fetch.Input, fs.NArg())
		for i, p := range fs.Args() {
			inputs[i] = fetch.Input{Path: p}
		}
		results := fetch.AnalyzeBatch(inputs, fetch.BatchOptions{
			Jobs:      *jobs,
			IntraJobs: intraJobs(*jobs, fs.NArg()),
			Options:   opts,
		})
		var firstErr error
		for _, br := range results {
			if br.Err != nil {
				fmt.Fprintf(errW, "fetch: %s: %v\n", br.Name, br.Err)
				if firstErr == nil {
					firstErr = fmt.Errorf("%d of %d binaries failed", failures(results), len(results))
				}
				continue
			}
			if err := emit(br.Name, br.Result, len(results) > 1); err != nil {
				return err
			}
		}
		return firstErr
	default:
		fs.Usage()
		return errors.New("no binaries given (or use -sample)")
	}
}

// failures counts the batch items that reported an error.
func failures(results []fetch.BatchResult) int {
	n := 0
	for _, br := range results {
		if br.Err != nil {
			n++
		}
	}
	return n
}
