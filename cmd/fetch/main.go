// Command fetch analyzes System-V x64 ELF binaries and prints the
// detected function starts along with the corrections the pipeline
// applied (merged non-contiguous parts, removed bogus FDEs, starts
// recovered from function pointers and tail calls).
//
// Usage:
//
//	fetch [-fde-only] [-no-xref] [-no-tailcall] [-jobs N] [-v] BINARY...
//	fetch -sample [-seed N] [-v]        analyze a generated sample
//
// Multiple binaries are analyzed concurrently (-jobs bounds the worker
// count, 0 = one per CPU) and reported in argument order; a failure on
// one binary does not stop the others.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"fetch"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "fetch:", err)
		os.Exit(1)
	}
}

func printResult(w io.Writer, res *fetch.Result, verbose bool) {
	fmt.Fprintf(w, "function starts:        %d\n", len(res.FunctionStarts))
	fmt.Fprintf(w, "raw FDE starts:         %d\n", len(res.FDEStarts))
	fmt.Fprintf(w, "from pointers (§IV-E):  %d\n", len(res.NewFromPointers))
	fmt.Fprintf(w, "from tail calls:        %d\n", len(res.NewFromTailCalls))
	fmt.Fprintf(w, "merged parts (Alg. 1):  %d\n", len(res.MergedParts))
	fmt.Fprintf(w, "removed bogus FDEs:     %d\n", len(res.RemovedBogusFDEs))
	fmt.Fprintf(w, "skipped (no CFI info):  %d\n", res.SkippedIncompleteCFI)
	if verbose {
		st := res.Stats
		total := st.InstsDecoded + st.InstsReused
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(st.InstsReused) / float64(total)
		}
		fmt.Fprintf(w, "insts decoded/reused:   %d/%d (%.1f%% reused)\n",
			st.InstsDecoded, st.InstsReused, pct)
		fmt.Fprintf(w, "session ops:            %d extend, %d retract, %d fork, %d probe\n",
			st.Extends, st.Retracts, st.Forks, st.Probes)
		fmt.Fprintf(w, "xref iterations:        %d (converged: %v)\n",
			st.XrefIterations, st.XrefConverged)
		for _, ps := range st.Passes {
			fmt.Fprintf(w, "pass %-10s         %v\n", ps.Name, ps.Wall.Round(time.Microsecond))
		}
		for _, a := range res.FunctionStarts {
			fmt.Fprintf(w, "%#x\n", a)
		}
		parts := make([]uint64, 0, len(res.MergedParts))
		for part := range res.MergedParts {
			parts = append(parts, part)
		}
		sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
		for _, part := range parts {
			fmt.Fprintf(w, "merged %#x -> %#x\n", part, res.MergedParts[part])
		}
	}
}

// run executes the command against args, writing results to w and
// per-binary failures plus flag diagnostics to errW. It is separated
// from main so tests can drive every path directly.
func run(args []string, w, errW io.Writer) error {
	fs := flag.NewFlagSet("fetch", flag.ContinueOnError)
	fs.SetOutput(errW)
	fdeOnly := fs.Bool("fde-only", false, "only extract FDE PC Begin values")
	noXref := fs.Bool("no-xref", false, "disable function-pointer detection")
	noTail := fs.Bool("no-tailcall", false, "disable Algorithm 1 error fixing")
	sample := fs.Bool("sample", false, "analyze a generated sample binary instead of a file")
	seed := fs.Int64("seed", 1, "sample generation seed")
	jobs := fs.Int("jobs", 0, "concurrent analyses for multiple binaries (0 = one per CPU)")
	verbose := fs.Bool("v", false, "list every detected start plus per-pass timing and session statistics")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var opts []fetch.Option
	if *fdeOnly {
		opts = append(opts, fetch.FDEOnly())
	}
	if *noXref {
		opts = append(opts, fetch.WithoutXref())
	}
	if *noTail {
		opts = append(opts, fetch.WithoutTailCall())
	}

	switch {
	case *sample:
		raw, _, err := fetch.GenerateSample(fetch.SampleConfig{Seed: *seed, Stripped: true})
		if err != nil {
			return err
		}
		res, err := fetch.Analyze(raw, opts...)
		if err != nil {
			return err
		}
		printResult(w, res, *verbose)
		return nil
	case fs.NArg() >= 1:
		inputs := make([]fetch.Input, fs.NArg())
		for i, p := range fs.Args() {
			inputs[i] = fetch.Input{Path: p}
		}
		results := fetch.AnalyzeBatch(inputs, fetch.BatchOptions{Jobs: *jobs, Options: opts})
		var firstErr error
		for _, br := range results {
			if len(results) > 1 {
				fmt.Fprintf(w, "== %s ==\n", br.Name)
			}
			if br.Err != nil {
				fmt.Fprintf(errW, "fetch: %s: %v\n", br.Name, br.Err)
				if firstErr == nil {
					firstErr = fmt.Errorf("%d of %d binaries failed", failures(results), len(results))
				}
				continue
			}
			printResult(w, br.Result, *verbose)
		}
		return firstErr
	default:
		fs.Usage()
		return errors.New("no binaries given (or use -sample)")
	}
}

// failures counts the batch items that reported an error.
func failures(results []fetch.BatchResult) int {
	n := 0
	for _, br := range results {
		if br.Err != nil {
			n++
		}
	}
	return n
}
