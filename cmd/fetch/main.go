// Command fetch analyzes a System-V x64 ELF binary and prints the
// detected function starts along with the corrections the pipeline
// applied (merged non-contiguous parts, removed bogus FDEs, starts
// recovered from function pointers and tail calls).
//
// Usage:
//
//	fetch [-fde-only] [-no-xref] [-no-tailcall] [-v] BINARY
//	fetch -sample [-seed N] [-v]        analyze a generated sample
package main

import (
	"flag"
	"fmt"
	"os"

	"fetch"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fetch:", err)
		os.Exit(1)
	}
}

func run() error {
	fdeOnly := flag.Bool("fde-only", false, "only extract FDE PC Begin values")
	noXref := flag.Bool("no-xref", false, "disable function-pointer detection")
	noTail := flag.Bool("no-tailcall", false, "disable Algorithm 1 error fixing")
	sample := flag.Bool("sample", false, "analyze a generated sample binary instead of a file")
	seed := flag.Int64("seed", 1, "sample generation seed")
	verbose := flag.Bool("v", false, "list every detected start")
	flag.Parse()

	var opts []fetch.Option
	if *fdeOnly {
		opts = append(opts, fetch.FDEOnly())
	}
	if *noXref {
		opts = append(opts, fetch.WithoutXref())
	}
	if *noTail {
		opts = append(opts, fetch.WithoutTailCall())
	}

	var res *fetch.Result
	var err error
	switch {
	case *sample:
		var raw []byte
		raw, _, err = fetch.GenerateSample(fetch.SampleConfig{Seed: *seed, Stripped: true})
		if err != nil {
			return err
		}
		res, err = fetch.Analyze(raw, opts...)
	case flag.NArg() == 1:
		res, err = fetch.AnalyzeFile(flag.Arg(0), opts...)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		return err
	}

	fmt.Printf("function starts:        %d\n", len(res.FunctionStarts))
	fmt.Printf("raw FDE starts:         %d\n", len(res.FDEStarts))
	fmt.Printf("from pointers (§IV-E):  %d\n", len(res.NewFromPointers))
	fmt.Printf("from tail calls:        %d\n", len(res.NewFromTailCalls))
	fmt.Printf("merged parts (Alg. 1):  %d\n", len(res.MergedParts))
	fmt.Printf("removed bogus FDEs:     %d\n", len(res.RemovedBogusFDEs))
	fmt.Printf("skipped (no CFI info):  %d\n", res.SkippedIncompleteCFI)
	if *verbose {
		for _, a := range res.FunctionStarts {
			fmt.Printf("%#x\n", a)
		}
		for part, owner := range res.MergedParts {
			fmt.Printf("merged %#x -> %#x\n", part, owner)
		}
	}
	return nil
}
