// Command realeval evaluates the pipeline on real, unstripped ELF
// binaries of any supported ISA (x86-64, aarch64). Each binary is made
// self-validating: the symbol
// information it ships (.symtab, Go's .gopclntab, or partially
// .dynsym) becomes the ground truth, a stripped in-memory copy is
// analyzed with the paper's full strategy ladder, and the detections
// are scored with the same precision/recall metrics as the synthetic
// lane.
//
// Usage:
//
//	realeval [-jobs N] [-json] [-v] [-golden FILE] [-max-bytes N] BINARY...
//	realeval -corpus DIR [flags]         evaluate every ELF under DIR
//	realeval -scan [flags] DIR...        walk host directories for ELFs
//
// With no inputs at all, the committed mini-corpus at testdata/realbin
// is used when present. -golden checks the run against minimum
// precision/recall floors and fails the command on any violation; a
// binary that hard-fails analysis always fails the command. Skipped
// binaries (unsupported ISA, too large, no derivable truth) never do —
// scan mode is expected to meet many of those.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"fetch/internal/realbin"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "realeval:", err)
		os.Exit(1)
	}
}

// defaultCorpus is the committed mini-corpus, relative to the repo
// root (where CI invokes the command).
const defaultCorpus = "testdata/realbin"

// run executes the command against args, writing reports to w and
// diagnostics to errW.
func run(args []string, w, errW io.Writer) error {
	fs := flag.NewFlagSet("realeval", flag.ContinueOnError)
	fs.SetOutput(errW)
	var (
		corpus   = fs.String("corpus", "", "evaluate every ELF found under this directory")
		scan     = fs.Bool("scan", false, "treat positional arguments as directories to walk for ELFs")
		jobs     = fs.Int("jobs", 0, "concurrent evaluations (0 = one per CPU)")
		maxBytes = fs.Int64("max-bytes", 64<<20, "skip binaries larger than this (0 = no limit)")
		golden   = fs.String("golden", "", "check scores against the floors in this JSON file")
		jsonOut  = fs.Bool("json", false, "emit the full report as JSON")
		verbose  = fs.Bool("v", false, "list skipped binaries and per-strategy rows for every binary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var paths []string
	var scanStats *realbin.ScanResult
	switch {
	case *scan:
		if fs.NArg() == 0 {
			return errors.New("-scan needs at least one directory")
		}
		scanStats = realbin.Scan(fs.Args(), *maxBytes)
		paths = scanStats.Candidates
	default:
		paths = fs.Args()
		dir := *corpus
		if dir == "" && len(paths) == 0 {
			if _, err := os.Stat(defaultCorpus); err != nil {
				return errors.New("no binaries given and no testdata/realbin corpus here (see -h)")
			}
			dir = defaultCorpus
		}
		if dir != "" {
			found := realbin.Scan([]string{dir}, *maxBytes)
			if len(found.Candidates) == 0 {
				return fmt.Errorf("no ELF binaries under %s", dir)
			}
			paths = append(found.Candidates, paths...)
		}
	}

	rep := realbin.EvalFiles(nil, paths, *jobs, *maxBytes)
	// Golden floors key on basenames so the same file works from any
	// checkout location.
	for _, b := range rep.Binaries {
		if b.Path != "" {
			b.Name = filepath.Base(b.Path)
		}
	}

	var violations []string
	if *golden != "" {
		g, err := realbin.LoadGolden(*golden)
		if err != nil {
			return err
		}
		violations = g.Check(rep)
	}

	if *jsonOut {
		doc, err := json.MarshalIndent(struct {
			Scan       *realbin.ScanResult   `json:"scan,omitempty"`
			Report     *realbin.CorpusReport `json:"report"`
			Violations []string              `json:"violations,omitempty"`
		}{scanStats, rep, violations}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(doc))
	} else {
		printReport(w, rep, scanStats, *verbose)
		for _, v := range violations {
			fmt.Fprintf(w, "GOLDEN VIOLATION: %s\n", v)
		}
	}

	if n := len(rep.Errs()); n > 0 {
		return fmt.Errorf("%d binary(ies) failed analysis", n)
	}
	if len(violations) > 0 {
		return fmt.Errorf("%d golden floor violation(s)", len(violations))
	}
	return nil
}

// printReport renders the text form: one block per binary with its
// truth provenance and strategy rows, then the corpus aggregate.
func printReport(w io.Writer, rep *realbin.CorpusReport, scan *realbin.ScanResult, verbose bool) {
	if scan != nil {
		fmt.Fprintf(w, "scan: %d candidates, %d non-ELF, %d other-ISA, %d too large, %d unreadable\n\n",
			len(scan.Candidates), scan.NonELF, scan.OtherISA, scan.TooLarge, scan.Unreadable)
	}
	for _, b := range rep.Binaries {
		switch {
		case b.Err != "":
			fmt.Fprintf(w, "%s: ERROR: %s\n", b.Name, b.Err)
			continue
		case !b.Evaluated():
			if verbose {
				fmt.Fprintf(w, "%s: skipped: %s\n", b.Name, b.Skip)
			}
			continue
		}
		src := b.Truth.Source
		if b.Truth.Partial {
			src += " (partial)"
		}
		fmt.Fprintf(w, "%s: truth=%s funcs=%d parts=%d", b.Name, src, b.TruthFuncs, b.TruthParts)
		if b.SyntheticEHFrame {
			fmt.Fprint(w, " synthetic-eh-frame")
		}
		if b.EHStats.Skipped() || b.EHStats.DWARF64 > 0 {
			fmt.Fprintf(w, " eh[entries=%d dwarf64=%d skipped-cies=%d skipped-fdes=%d]",
				b.EHStats.Entries, b.EHStats.DWARF64, b.EHStats.SkippedCIEs, b.EHStats.SkippedFDEs)
		}
		fmt.Fprintln(w)
		for _, s := range b.Scores {
			if !verbose && s.Strategy != "FETCH" {
				continue
			}
			fmt.Fprintf(w, "  %-14s funcs=%-6d tp=%-6d fp=%-5d fn=%-5d P=%.4f R=%.4f F1=%.4f %8.1fms\n",
				s.Strategy, s.Funcs, s.TP, s.FP, s.FN, s.Precision, s.Recall, s.F1, s.WallMS)
		}
	}
	fmt.Fprintf(w, "\ncorpus: %d evaluated, %d skipped, %d failed\n",
		rep.Evaluated, rep.Skipped, rep.Failed)
	for _, a := range rep.Aggregate {
		fmt.Fprintf(w, "  %-14s tp=%-7d fp=%-6d fn=%-6d P=%.4f R=%.4f F1=%.4f\n",
			a.Strategy, a.TP, a.FP, a.FN, a.Precision, a.Recall, a.F1)
	}
}
