package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fetch/internal/realbin"
)

const corpus = "../../testdata/realbin"

// TestRunCorpus drives the committed mini-corpus through the text
// path with its golden floors: every binary must evaluate and hold
// the line.
func TestRunCorpus(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-corpus", corpus, "-golden", filepath.Join(corpus, "golden.json")}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"hello-gcc-o2.bin", "synth-gcc-c-o2.bin", "FETCH", "corpus: 4 evaluated, 0 skipped, 0 failed"} {
		if !strings.Contains(text, want) {
			t.Errorf("output lacks %q:\n%s", want, text)
		}
	}
}

// TestRunGoldenViolation pins the failure mode: an impossible floor
// must fail the command and name the violation.
func TestRunGoldenViolation(t *testing.T) {
	dir := t.TempDir()
	g := realbin.Golden{"hello-gcc-o2.bin": {{MinPrecision: 1.01}}}
	blob, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join(dir, "golden.json")
	if err := os.WriteFile(goldenPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run([]string{"-golden", goldenPath, filepath.Join(corpus, "hello-gcc-o2.bin")}, &out, &out)
	if err == nil || !strings.Contains(err.Error(), "violation") {
		t.Fatalf("err = %v, want golden violation", err)
	}
	if !strings.Contains(out.String(), "GOLDEN VIOLATION") {
		t.Errorf("violation not printed:\n%s", out.String())
	}
}

// TestRunJSON pins the machine-readable path: the document must parse
// and carry the same shape the realbin package serializes.
func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-json", filepath.Join(corpus, "synth-gcc-c-o2.bin")}, &out, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var doc struct {
		Report *realbin.CorpusReport `json:"report"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if doc.Report == nil || doc.Report.Evaluated != 1 {
		t.Fatalf("report = %+v, want 1 evaluated binary", doc.Report)
	}
	b := doc.Report.Binaries[0]
	if b.Name != "synth-gcc-c-o2.bin" || len(b.Scores) != len(realbin.StrategyNames) {
		t.Errorf("row = %+v, want full strategy ladder under basename", b)
	}
}

// TestRunScanMode walks a directory with junk mixed in: the junk is
// counted, the ELF evaluates, nothing fails.
func TestRunScanMode(t *testing.T) {
	dir := t.TempDir()
	src, err := os.ReadFile(filepath.Join(corpus, "synth-gcc-c-o2.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bin"), src, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.sh"), []byte("#!/bin/sh\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-scan", "-v", dir}, &out, &out); err != nil {
		t.Fatalf("scan run: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "scan: 1 candidates, 1 non-ELF") {
		t.Errorf("scan counters wrong:\n%s", text)
	}
	if !strings.Contains(text, "corpus: 1 evaluated") {
		t.Errorf("scanned binary not evaluated:\n%s", text)
	}
}

// TestRunUsageErrors pins the argument contract.
func TestRunUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scan"}, &out, &out); err == nil {
		t.Error("-scan with no dirs accepted")
	}
	if err := run([]string{"-corpus", filepath.Join(t.TempDir(), "empty")}, &out, &out); err == nil {
		t.Error("empty corpus dir accepted")
	}
}
