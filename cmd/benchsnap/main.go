// Command benchsnap converts `go test -bench` output into the
// BENCH_N.json perf-trajectory snapshot format committed at the repo
// root. Pipe any benchmark run through it:
//
//	go test -run '^$' -bench '^BenchmarkCache' -benchtime 1x . | benchsnap > BENCH_7.json
//
// The snapshot records every benchmark's ns/op plus all custom
// metrics (×vs-cold, fp, reused%, …) and the run's goos/goarch/cpu
// header, so speedup claims in docs and PRs can be diffed against a
// measured baseline instead of prose. Output is stable JSON: one
// object per benchmark, sorted by name, environment header separate —
// two snapshots from the same machine diff cleanly. Multi-package runs
// (go test -bench ./pkg1 ./pkg2) qualify each benchmark name with its
// package path, so cross-backend twins like the x64/a64
// DecodeThroughput pair stay distinct.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the BENCH_N.json document: the machine header of the
// run plus one entry per benchmark line.
type Snapshot struct {
	Schema string `json:"schema"`
	// Goos/Goarch/CPU/Pkg mirror the go test -bench header lines.
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed result line. Metrics holds every
// per-iteration value the line reported keyed by its unit — ns/op is
// lifted out as the headline number, the rest (MB/s, ×vs-cold, custom
// b.ReportMetric units) stay in the map.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}

// run parses benchmark output from r and writes the snapshot JSON to
// w. It is separated from main so tests can drive it directly.
func run(r io.Reader, w io.Writer) error {
	snap := Snapshot{Schema: "fetch-benchsnap-1"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	// Multi-package runs (go test -bench ./pkg1 ./pkg2) repeat the pkg
	// header; each benchmark remembers the package it ran in so
	// same-named benchmarks from different packages stay distinct.
	var curPkg string
	pkgs := map[string]bool{}
	var pkgOf []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			curPkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			pkgs[curPkg] = true
			if snap.Pkg == "" {
				snap.Pkg = curPkg
			}
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				snap.Benchmarks = append(snap.Benchmarks, b)
				pkgOf = append(pkgOf, curPkg)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}
	if len(pkgs) > 1 {
		// More than one package: the single Pkg header is dropped and
		// every name is qualified by its package path instead.
		snap.Pkg = ""
		for i := range snap.Benchmarks {
			if pkgOf[i] != "" {
				snap.Benchmarks[i].Name = pkgOf[i] + "." + snap.Benchmarks[i].Name
			}
		}
	}
	sort.Slice(snap.Benchmarks, func(i, j int) bool {
		return snap.Benchmarks[i].Name < snap.Benchmarks[j].Name
	})
	out, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", out)
	return err
}

// parseLine decodes one `BenchmarkName-P  N  V unit  V unit ...`
// result line. Lines that do not parse (e.g. a benchmark that printed
// output) are skipped, not fatal: a snapshot of the lines that did
// parse is still useful.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name, procs := splitProcs(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters}
	// The rest of the line is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = v
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// splitProcs separates "BenchmarkFoo/sub=1-8" into the benchmark name
// (including sub-benchmark path) and the trailing GOMAXPROCS suffix.
func splitProcs(s string) (string, int) {
	i := strings.LastIndex(s, "-")
	if i < 0 {
		return s, 1
	}
	p, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return s, 1
	}
	return s[:i], p
}
