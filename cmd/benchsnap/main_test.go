package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: fetch
cpu: AMD EPYC 7B13
BenchmarkCacheCold-8      	       1	331224601 ns/op	  0.88 MB/s
BenchmarkCacheHit-8       	    3966	    293924 ns/op	993.77 MB/s
BenchmarkDeltaReanalysis-8	       1	  20714804 ns/op	  12.41 ×vs-cold	 14.11 MB/s
BenchmarkShardedAnalyze/jobs=4-8	       1	151000000 ns/op	         0 fallbacks	      1213 funcs
PASS
ok  	fetch	12.345s
`

func TestRunParsesBenchOutput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sampleOutput), &out); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(out.String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != "fetch-benchsnap-1" || snap.Goos != "linux" || snap.CPU != "AMD EPYC 7B13" {
		t.Fatalf("header: %+v", snap)
	}
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks", len(snap.Benchmarks))
	}
	byName := make(map[string]Benchmark)
	for _, b := range snap.Benchmarks {
		byName[b.Name] = b
	}
	delta := byName["BenchmarkDeltaReanalysis"]
	if delta.NsPerOp != 20714804 || delta.Metrics["×vs-cold"] != 12.41 {
		t.Fatalf("delta entry: %+v", delta)
	}
	sharded := byName["BenchmarkShardedAnalyze/jobs=4"]
	if sharded.Procs != 8 || sharded.Metrics["funcs"] != 1213 {
		t.Fatalf("sharded entry: %+v", sharded)
	}
	// Output is sorted by name for clean diffs.
	for i := 1; i < len(snap.Benchmarks); i++ {
		if snap.Benchmarks[i-1].Name > snap.Benchmarks[i].Name {
			t.Fatal("benchmarks not sorted by name")
		}
	}
}

const multiPkgOutput = `goos: linux
goarch: amd64
pkg: fetch/internal/x64
cpu: AMD EPYC 7B13
BenchmarkDecodeThroughput 	     769	   1597393 ns/op	  41.04 MB/s
PASS
ok  	fetch/internal/x64	1.393s
pkg: fetch/internal/a64
BenchmarkDecodeThroughput 	     967	   1203367 ns/op	  54.50 MB/s
PASS
ok  	fetch/internal/a64	1.299s
`

// TestRunMultiPackage pins the cross-package disambiguation: two
// same-named benchmarks from different packages get package-qualified
// names and the single-package header field is dropped.
func TestRunMultiPackage(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(multiPkgOutput), &out); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(out.String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Pkg != "" {
		t.Errorf("Pkg = %q, want empty on a multi-package run", snap.Pkg)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(snap.Benchmarks))
	}
	byName := make(map[string]Benchmark)
	for _, b := range snap.Benchmarks {
		byName[b.Name] = b
	}
	if byName["fetch/internal/x64.BenchmarkDecodeThroughput"].Metrics["MB/s"] != 41.04 {
		t.Errorf("x64 entry missing or wrong: %+v", snap.Benchmarks)
	}
	if byName["fetch/internal/a64.BenchmarkDecodeThroughput"].Metrics["MB/s"] != 54.50 {
		t.Errorf("a64 entry missing or wrong: %+v", snap.Benchmarks)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("PASS\nok fetch 1s\n"), &out); err == nil {
		t.Fatal("no error for input without benchmark lines")
	}
}
