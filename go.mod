module fetch

go 1.21
