package fetch

import (
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	raw, truth, err := GenerateSample(SampleConfig{Seed: 100})
	if err != nil {
		t.Fatalf("GenerateSample: %v", err)
	}
	res, err := Analyze(raw)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(res.FunctionStarts) == 0 {
		t.Fatal("no functions detected")
	}
	detected := map[uint64]bool{}
	for _, a := range res.FunctionStarts {
		detected[a] = true
	}
	missed := 0
	for _, a := range truth.FunctionStarts {
		if !detected[a] {
			missed++
		}
	}
	// A handful of harmless misses (tail-only / unreachable asm) are
	// expected; anything beyond that is a regression.
	if missed > len(truth.FunctionStarts)/20 {
		t.Errorf("missed %d/%d true starts", missed, len(truth.FunctionStarts))
	}
}

func TestPublicAPIStrategies(t *testing.T) {
	raw, truth, err := GenerateSample(SampleConfig{Seed: 101, Stripped: true})
	if err != nil {
		t.Fatal(err)
	}
	fdeOnly, err := Analyze(raw, FDEOnly())
	if err != nil {
		t.Fatal(err)
	}
	full, err := Analyze(raw)
	if err != nil {
		t.Fatal(err)
	}
	// FDE-only must report every part start (false positives by
	// construction); the full pipeline must merge the mergeable ones.
	fdeSet := map[uint64]bool{}
	for _, a := range fdeOnly.FunctionStarts {
		fdeSet[a] = true
	}
	fullSet := map[uint64]bool{}
	for _, a := range full.FunctionStarts {
		fullSet[a] = true
	}
	stillThere := 0
	for _, p := range truth.PartStarts {
		if !fdeSet[p] {
			t.Errorf("FDE-only missing part FDE %#x", p)
		}
		if fullSet[p] {
			stillThere++
		}
	}
	if len(truth.PartStarts) > 0 && stillThere == len(truth.PartStarts) {
		t.Error("full pipeline merged nothing")
	}
	if len(full.MergedParts) == 0 && len(truth.PartStarts) > 0 {
		t.Error("MergedParts empty")
	}
}

func TestPublicAPIOptionCombinations(t *testing.T) {
	raw, _, err := GenerateSample(SampleConfig{Seed: 102, NumFuncs: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]Option{
		nil,
		{WithoutXref()},
		{WithoutTailCall()},
		{WithoutXref(), WithoutTailCall()},
		{FDEOnly()},
	} {
		if _, err := Analyze(raw, opts...); err != nil {
			t.Errorf("Analyze with %d opts: %v", len(opts), err)
		}
	}
}

func TestPublicAPIBadInput(t *testing.T) {
	if _, err := Analyze([]byte("junk")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := AnalyzeFile("/nonexistent/path/binary"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestGenerateSampleVariants(t *testing.T) {
	for _, cfg := range []SampleConfig{
		{Seed: 1, Opt: "O3", Compiler: "clang", Lang: "c++"},
		{Seed: 2, Opt: "Os", Compiler: "gcc", Lang: "c"},
		{Seed: 3, Opt: "Ofast", NumFuncs: 40},
	} {
		raw, truth, err := GenerateSample(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if len(raw) == 0 || len(truth.FunctionStarts) == 0 {
			t.Fatalf("%+v: empty output", cfg)
		}
	}
}
