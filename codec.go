package fetch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// ResultSchemaVersion is the version of the serialized Result schema
// produced by EncodeResult and accepted by DecodeResult. It is bumped
// on any change to field names, types, units, or semantics; older
// encodings are rejected rather than silently reinterpreted, and the
// result cache keys on it so a schema bump invalidates every stored
// entry at once. The schema is documented field by field in
// docs/API.md.
//
// Version 2 added the xref-truncation flag (stats.truncated) and the
// intra-binary sharding trace (stats.jobs, stats.sharded_passes,
// stats.shard_fallbacks, stats.merge_wall_ns, stats.shards).
//
// Version 3 added the function-granular delta re-analysis trace
// (stats.delta_path, stats.delta_dirty_ranges, stats.delta_total_ranges,
// stats.delta_fallback_reason).
//
// Version 4 added the memory accounting of the file-backed image path
// (stats.peak_image_bytes, stats.peak_aux_bytes).
const ResultSchemaVersion = 4

// hexAddr serializes a code address as a 0x-prefixed hex string. JSON
// numbers are IEEE-754 doubles in most consumers, which silently
// corrupt addresses above 2^53; strings keep the full 64 bits and read
// naturally in a binary-analysis API.
type hexAddr uint64

// MarshalText renders the address as 0x-prefixed lower-case hex.
func (h hexAddr) MarshalText() ([]byte, error) {
	return []byte(fmt.Sprintf("%#x", uint64(h))), nil
}

// UnmarshalText accepts any base strconv.ParseUint(s, 0, 64) does,
// canonically the 0x form MarshalText emits.
func (h *hexAddr) UnmarshalText(b []byte) error {
	v, err := strconv.ParseUint(string(b), 0, 64)
	if err != nil {
		return fmt.Errorf("fetch: bad address %q: %w", b, err)
	}
	*h = hexAddr(v)
	return nil
}

// jsonResult is the wire form of Result. Field names are the canonical
// schema vocabulary shared by the JSON codec, the Summarize helper the
// CLI prints through, and docs/API.md. No field uses omitempty: a nil
// slice encodes as null and an empty one as [], so decoding restores
// the exact value and round trips are reflect.DeepEqual-exact.
type jsonResult struct {
	Schema               int                 `json:"schema"`
	FunctionStarts       []hexAddr           `json:"function_starts"`
	FDEStarts            []hexAddr           `json:"fde_starts"`
	NewFromPointers      []hexAddr           `json:"new_from_pointers"`
	NewFromTailCalls     []hexAddr           `json:"new_from_tail_calls"`
	MergedParts          map[hexAddr]hexAddr `json:"merged_parts"`
	RemovedBogusFDEs     []hexAddr           `json:"removed_bogus_fdes"`
	SkippedIncompleteCFI int                 `json:"skipped_incomplete_cfi"`
	Stats                jsonStats           `json:"stats"`
}

// jsonStats is the wire form of Stats. Durations are integer
// nanoseconds (the _ns suffix is the unit contract).
type jsonStats struct {
	Passes         []jsonPass  `json:"passes"`
	InstsDecoded   int64       `json:"insts_decoded"`
	InstsReused    int64       `json:"insts_reused"`
	ColdStarts     int         `json:"cold_starts"`
	Extends        int         `json:"extends"`
	Retracts       int         `json:"retracts"`
	Forks          int         `json:"forks"`
	Probes         int         `json:"probes"`
	XrefIterations int         `json:"xref_iterations"`
	XrefConverged  bool        `json:"xref_converged"`
	Truncated      bool        `json:"truncated"`
	Jobs           int         `json:"jobs"`
	ShardedPasses  int         `json:"sharded_passes"`
	ShardFallbacks int         `json:"shard_fallbacks"`
	MergeWallNS    int64       `json:"merge_wall_ns"`
	Shards         []jsonShard `json:"shards"`

	DeltaPath           bool   `json:"delta_path"`
	DeltaDirtyRanges    int    `json:"delta_dirty_ranges"`
	DeltaTotalRanges    int    `json:"delta_total_ranges"`
	DeltaFallbackReason string `json:"delta_fallback_reason"`

	PeakImageBytes int64 `json:"peak_image_bytes"`
	PeakAuxBytes   int64 `json:"peak_aux_bytes"`
}

// jsonPass is the wire form of PassStat.
type jsonPass struct {
	Name   string `json:"name"`
	WallNS int64  `json:"wall_ns"`
}

// jsonShard is the wire form of ShardStat.
type jsonShard struct {
	Seeds        int   `json:"seeds"`
	InstsDecoded int64 `json:"insts_decoded"`
	InstsReused  int64 `json:"insts_reused"`
	WallNS       int64 `json:"wall_ns"`
}

func toHexSlice(in []uint64) []hexAddr {
	if in == nil {
		return nil
	}
	out := make([]hexAddr, len(in))
	for i, v := range in {
		out[i] = hexAddr(v)
	}
	return out
}

func fromHexSlice(in []hexAddr) []uint64 {
	if in == nil {
		return nil
	}
	out := make([]uint64, len(in))
	for i, v := range in {
		out[i] = uint64(v)
	}
	return out
}

// EncodeResult serializes a Result into the stable, versioned JSON
// schema documented in docs/API.md. The encoding is deterministic
// (sorted map keys, fixed field order) and DecodeResult restores a
// Result reflect.DeepEqual-equal to the input, including nil-versus-
// empty slice distinctions.
func EncodeResult(res *Result) ([]byte, error) {
	jr := jsonResult{
		Schema:               ResultSchemaVersion,
		FunctionStarts:       toHexSlice(res.FunctionStarts),
		FDEStarts:            toHexSlice(res.FDEStarts),
		NewFromPointers:      toHexSlice(res.NewFromPointers),
		NewFromTailCalls:     toHexSlice(res.NewFromTailCalls),
		RemovedBogusFDEs:     toHexSlice(res.RemovedBogusFDEs),
		SkippedIncompleteCFI: res.SkippedIncompleteCFI,
		Stats: jsonStats{
			InstsDecoded:   res.Stats.InstsDecoded,
			InstsReused:    res.Stats.InstsReused,
			ColdStarts:     res.Stats.ColdStarts,
			Extends:        res.Stats.Extends,
			Retracts:       res.Stats.Retracts,
			Forks:          res.Stats.Forks,
			Probes:         res.Stats.Probes,
			XrefIterations: res.Stats.XrefIterations,
			XrefConverged:  res.Stats.XrefConverged,
			Truncated:      res.Stats.Truncated,
			Jobs:           res.Stats.Jobs,
			ShardedPasses:  res.Stats.ShardedPasses,
			ShardFallbacks: res.Stats.ShardFallbacks,
			MergeWallNS:    int64(res.Stats.MergeWall),

			DeltaPath:           res.Stats.DeltaPath,
			DeltaDirtyRanges:    res.Stats.DeltaDirtyRanges,
			DeltaTotalRanges:    res.Stats.DeltaTotalRanges,
			DeltaFallbackReason: res.Stats.DeltaFallbackReason,

			PeakImageBytes: res.Stats.PeakImageBytes,
			PeakAuxBytes:   res.Stats.PeakAuxBytes,
		},
	}
	if res.Stats.Shards != nil {
		jr.Stats.Shards = make([]jsonShard, len(res.Stats.Shards))
		for i, sh := range res.Stats.Shards {
			jr.Stats.Shards[i] = jsonShard{
				Seeds:        sh.Seeds,
				InstsDecoded: sh.InstsDecoded,
				InstsReused:  sh.InstsReused,
				WallNS:       int64(sh.Wall),
			}
		}
	}
	if res.MergedParts != nil {
		jr.MergedParts = make(map[hexAddr]hexAddr, len(res.MergedParts))
		for part, owner := range res.MergedParts {
			jr.MergedParts[hexAddr(part)] = hexAddr(owner)
		}
	}
	if res.Stats.Passes != nil {
		jr.Stats.Passes = make([]jsonPass, len(res.Stats.Passes))
		for i, ps := range res.Stats.Passes {
			jr.Stats.Passes[i] = jsonPass{Name: ps.Name, WallNS: int64(ps.Wall)}
		}
	}
	data, err := json.MarshalIndent(jr, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("fetch: encoding result: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeResult parses an EncodeResult payload. It is strict: unknown
// fields and unknown schema versions are errors, never silently
// dropped, so a consumer cannot misread an encoding produced by a
// different codec version.
func DecodeResult(data []byte) (*Result, error) {
	var probe struct {
		Schema int `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("fetch: decoding result: %w", err)
	}
	if probe.Schema != ResultSchemaVersion {
		return nil, fmt.Errorf("fetch: result schema version %d, want %d",
			probe.Schema, ResultSchemaVersion)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var jr jsonResult
	if err := dec.Decode(&jr); err != nil {
		return nil, fmt.Errorf("fetch: decoding result: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return nil, fmt.Errorf("fetch: trailing data after result document")
	}
	res := &Result{
		FunctionStarts:       fromHexSlice(jr.FunctionStarts),
		FDEStarts:            fromHexSlice(jr.FDEStarts),
		NewFromPointers:      fromHexSlice(jr.NewFromPointers),
		NewFromTailCalls:     fromHexSlice(jr.NewFromTailCalls),
		RemovedBogusFDEs:     fromHexSlice(jr.RemovedBogusFDEs),
		SkippedIncompleteCFI: jr.SkippedIncompleteCFI,
		Stats: Stats{
			InstsDecoded:   jr.Stats.InstsDecoded,
			InstsReused:    jr.Stats.InstsReused,
			ColdStarts:     jr.Stats.ColdStarts,
			Extends:        jr.Stats.Extends,
			Retracts:       jr.Stats.Retracts,
			Forks:          jr.Stats.Forks,
			Probes:         jr.Stats.Probes,
			XrefIterations: jr.Stats.XrefIterations,
			XrefConverged:  jr.Stats.XrefConverged,
			Truncated:      jr.Stats.Truncated,
			Jobs:           jr.Stats.Jobs,
			ShardedPasses:  jr.Stats.ShardedPasses,
			ShardFallbacks: jr.Stats.ShardFallbacks,
			MergeWall:      time.Duration(jr.Stats.MergeWallNS),

			DeltaPath:           jr.Stats.DeltaPath,
			DeltaDirtyRanges:    jr.Stats.DeltaDirtyRanges,
			DeltaTotalRanges:    jr.Stats.DeltaTotalRanges,
			DeltaFallbackReason: jr.Stats.DeltaFallbackReason,

			PeakImageBytes: jr.Stats.PeakImageBytes,
			PeakAuxBytes:   jr.Stats.PeakAuxBytes,
		},
	}
	if jr.Stats.Shards != nil {
		res.Stats.Shards = make([]ShardStat, len(jr.Stats.Shards))
		for i, sh := range jr.Stats.Shards {
			res.Stats.Shards[i] = ShardStat{
				Seeds:        sh.Seeds,
				InstsDecoded: sh.InstsDecoded,
				InstsReused:  sh.InstsReused,
				Wall:         time.Duration(sh.WallNS),
			}
		}
	}
	if jr.MergedParts != nil {
		res.MergedParts = make(map[uint64]uint64, len(jr.MergedParts))
		for part, owner := range jr.MergedParts {
			res.MergedParts[uint64(part)] = uint64(owner)
		}
	}
	if jr.Stats.Passes != nil {
		res.Stats.Passes = make([]PassStat, len(jr.Stats.Passes))
		for i, ps := range jr.Stats.Passes {
			res.Stats.Passes[i] = PassStat{Name: ps.Name, Wall: time.Duration(ps.WallNS)}
		}
	}
	return res, nil
}
