package fetch

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// stripWall zeroes the only legitimately non-deterministic Result
// fields — pass wall times plus the delta-path trace, which describes
// how a result was obtained rather than what it is — so cached,
// delta-served, and recomputed results can be compared exactly.
func stripWall(r *Result) *Result {
	cp := *r
	cp.Stats.Passes = append([]PassStat(nil), r.Stats.Passes...)
	for i := range cp.Stats.Passes {
		cp.Stats.Passes[i].Wall = 0
	}
	cp.Stats.DeltaPath = false
	cp.Stats.DeltaDirtyRanges = 0
	cp.Stats.DeltaTotalRanges = 0
	cp.Stats.DeltaFallbackReason = ""
	return &cp
}

// resultTier recovers the whole-binary-result traffic from raw cache
// counters, which also carry the delta tier's manifest and
// function-range traffic (see CacheStats).
func resultTier(st CacheStats) (hits, misses, puts int64) {
	return st.Hits - st.ManifestHits - st.FnTierHits,
		st.Misses - st.ManifestMisses - st.FnTierMisses,
		st.Puts - st.DeltaPuts
}

func sampleBytes(t testing.TB, seed int64) []byte {
	t.Helper()
	raw, _, err := GenerateSample(SampleConfig{Seed: seed, NumFuncs: 60, Stripped: true})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestWithCacheServesSecondCall(t *testing.T) {
	cache, err := NewCache(CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bin := sampleBytes(t, 9001)

	cold, err := Analyze(bin, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Analyze(bin, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(cold), stripWall(warm)) {
		t.Fatal("cached result differs from cold result")
	}
	st := cache.Stats()
	if hits, misses, puts := resultTier(st); misses != 1 || hits != 1 || puts != 1 {
		t.Fatalf("cache counters: %+v", st)
	}

	// An uncached analysis of the same bytes must agree too.
	plain, err := Analyze(bin)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(plain), stripWall(warm)) {
		t.Fatal("cached result differs from uncached analysis")
	}
}

func TestCacheKeysOnStrategy(t *testing.T) {
	cache, err := NewCache(CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bin := sampleBytes(t, 9002)
	full, err := Analyze(bin, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	fde, err := Analyze(bin, WithCache(cache), FDEOnly())
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if _, misses, puts := resultTier(st); misses != 2 || puts != 2 {
		t.Fatalf("strategies aliased in cache: %+v", st)
	}
	if len(fde.Stats.Passes) != 1 || len(full.Stats.Passes) < 3 {
		t.Fatalf("strategy results mixed up: fde ran %v, full ran %v",
			fde.Stats.Passes, full.Stats.Passes)
	}
}

func TestCacheGetByHash(t *testing.T) {
	cache, err := NewCache(CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bin := sampleBytes(t, 9003)
	sum := HashBinary(bin)
	if _, ok := cache.Get(sum); ok {
		t.Fatal("hit before any analysis")
	}
	want, err := Analyze(bin, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := cache.Get(sum)
	if !ok {
		t.Fatal("by-hash miss after analysis")
	}
	if !reflect.DeepEqual(stripWall(want), stripWall(got)) {
		t.Fatal("by-hash result differs")
	}
	// The variant is part of the key.
	if _, ok := cache.Get(sum, FDEOnly()); ok {
		t.Fatal("by-hash hit for a never-analyzed strategy")
	}
}

func TestCacheAnalyzeReportsHit(t *testing.T) {
	cache, err := NewCache(CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bin := sampleBytes(t, 9004)
	_, cached, err := cache.Analyze(bin)
	if err != nil || cached {
		t.Fatalf("first: cached=%v err=%v", cached, err)
	}
	_, cached, err = cache.Analyze(bin)
	if err != nil || !cached {
		t.Fatalf("second: cached=%v err=%v", cached, err)
	}
}

func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	bin := sampleBytes(t, 9005)

	c1, err := NewCache(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Analyze(bin, WithCache(c1))
	if err != nil {
		t.Fatal(err)
	}

	c2, err := NewCache(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Analyze(bin, WithCache(c2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(want), stripWall(got)) {
		t.Fatal("disk-restored result differs")
	}
	st := c2.Stats()
	if st.DiskHits != 1 {
		t.Fatalf("expected a disk hit: %+v", st)
	}
}

// TestDiskCacheRecomputesCorruptedEntry truncates the only on-disk
// entry and requires the next analysis to silently recompute and
// re-store it.
func TestDiskCacheRecomputesCorruptedEntry(t *testing.T) {
	dir := t.TempDir()
	bin := sampleBytes(t, 9006)
	c1, err := NewCache(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Analyze(bin, WithCache(c1))
	if err != nil {
		t.Fatal(err)
	}
	all, err := filepath.Glob(filepath.Join(dir, "*.rc"))
	if err != nil {
		t.Fatal(err)
	}
	// The delta tier adds manifest ("-mf.") and function-range ("-fn-")
	// entries beside the whole-binary result; corrupt the result entry.
	var entries []string
	for _, e := range all {
		base := filepath.Base(e)
		if !strings.Contains(base, "-mf.") && !strings.Contains(base, "-fn-") {
			entries = append(entries, e)
		}
	}
	if len(entries) != 1 {
		t.Fatalf("result entries %v", entries)
	}
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[0], raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := NewCache(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Analyze(bin, WithCache(c2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(want), stripWall(got)) {
		t.Fatal("recomputed result differs after corruption")
	}
	st := c2.Stats()
	if _, _, puts := resultTier(st); st.CorruptDrops != 1 || puts != 1 {
		t.Fatalf("corruption recovery counters: %+v", st)
	}
}
